"""Unit tests for the observability subsystem (events, tracer, sinks,
metrics): the pieces in isolation, before the per-scheme integration
tests in test_obs_integration.py."""

import io
import json

import pytest

from repro.obs import (
    Cause,
    EventType,
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    StreamingHistogram,
    TraceEvent,
    Tracer,
)

pytestmark = pytest.mark.obs


class TestTraceEvent:
    def test_record_round_trip(self):
        event = TraceEvent(
            type=EventType.MERGE_END, ts=123.4567, scheme="BAST",
            cause=Cause.MERGE, lpn=7, ppn=None, dur_us=2500.0,
            extra={"kind": "full"},
        )
        restored = TraceEvent.from_record(event.to_record())
        assert restored.type is EventType.MERGE_END
        assert restored.cause is Cause.MERGE
        assert restored.ts == pytest.approx(123.457)  # 3-decimal wire form
        assert restored.lpn == 7
        assert restored.ppn is None
        assert restored.dur_us == 2500.0
        assert restored.extra == {"kind": "full"}

    def test_record_drops_absent_fields(self):
        event = TraceEvent(type=EventType.HOST_READ, ts=0.0,
                           scheme="ideal", cause=Cause.HOST, lpn=3)
        record = event.to_record()
        assert "ppn" not in record
        assert "dur_us" not in record
        assert set(record) == {"type", "ts", "scheme", "cause", "lpn"}

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent.from_record(
                {"type": "Nope", "ts": 0, "scheme": "x", "cause": "host"}
            )


class TestTracerCauseStack:
    def test_default_cause_is_host(self):
        assert Tracer().current_cause is Cause.HOST

    def test_push_pop(self):
        tracer = Tracer()
        tracer.push_cause(Cause.GC)
        tracer.push_cause(Cause.MAPPING)  # innermost wins
        assert tracer.current_cause is Cause.MAPPING
        assert tracer.pop_cause() is Cause.MAPPING
        assert tracer.current_cause is Cause.GC

    def test_underflow_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().pop_cause()

    def test_cause_scope_restores_on_error(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            with tracer.cause(Cause.CONVERT):
                raise KeyError("boom")
        assert tracer.current_cause is Cause.HOST


class TestTracerEmission:
    def test_flash_op_advances_clock_and_stamps_cause(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        tracer.begin_run("X")
        tracer.set_clock(100.0)
        with tracer.cause(Cause.GC):
            tracer.flash_op(EventType.PAGE_READ, ppn=5, dur_us=25.0)
        tracer.flash_op(EventType.PAGE_PROGRAM, ppn=6, dur_us=200.0, lpn=9)
        first, second = ring.events
        assert (first.ts, first.cause) == (100.0, Cause.GC)
        assert (second.ts, second.cause) == (125.0, Cause.HOST)
        assert tracer.clock == 325.0
        assert tracer.attribution.total_us("X") == 225.0

    def test_suspend_mutes_events_but_keeps_clock(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        tracer.begin_run("X")
        tracer.suspend()
        tracer.flash_op(EventType.PAGE_READ, ppn=1, dur_us=25.0)
        tracer.resume()
        assert len(ring) == 0
        assert tracer.clock == 25.0  # warm-up still moves simulated time

    def test_span_duration_from_clock(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        tracer.begin_run("X")
        tracer.span_start(EventType.GC_START, Cause.GC, ppn=3)
        tracer.flash_op(EventType.PAGE_READ, ppn=40, dur_us=25.0)
        tracer.flash_op(EventType.BLOCK_ERASE, ppn=3, dur_us=1500.0)
        tracer.span_end(EventType.GC_END, ppn=3)
        end = ring.events[-1]
        assert end.type is EventType.GC_END
        assert end.dur_us == 1525.0
        # the inner flash ops were attributed to gc
        assert tracer.attribution.time_by_cause["X"] == {"gc": 1525.0}

    def test_begin_run_resets_state(self):
        tracer = Tracer()
        tracer.push_cause(Cause.MERGE)
        tracer.set_clock(999.0)
        tracer.begin_run("Y")
        assert tracer.clock == 0.0
        assert tracer.current_cause is Cause.HOST
        assert tracer.scheme == "Y"

    def test_metrics_counters_and_histograms(self):
        tracer = Tracer()
        tracer.begin_run("X")
        tracer.host_op(True, lpn=1, dur_us=200.0)
        tracer.host_op(False, lpn=2, dur_us=25.0)
        tracer.flash_op(EventType.PAGE_READ, ppn=0, dur_us=25.0)
        snapshot = tracer.metrics.as_dict()
        assert snapshot["counters"]["events.HostWrite"] == 1
        assert snapshot["counters"]["events.HostRead"] == 1
        assert snapshot["histograms"]["flash.PageRead_us"]["count"] == 1
        assert snapshot["histograms"]["host.HostWrite_us"]["mean"] == 200.0


class TestJsonlSink:
    def test_round_trip_through_stream(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        tracer = Tracer(sinks=[sink])
        tracer.begin_run("LazyFTL")
        tracer.flash_op(EventType.PAGE_PROGRAM, ppn=8, dur_us=200.0, lpn=3)
        tracer.emit(EventType.CONVERT, ppn=2, dur_us=450.0, entries=12)
        tracer.close()
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert sink.events_written == 2
        events = [TraceEvent.from_record(json.loads(l)) for l in lines]
        assert events[0].type is EventType.PAGE_PROGRAM
        assert events[1].extra == {"entries": 12}
        assert events[1].scheme == "LazyFTL"

    def test_file_target_owned_and_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        tracer = Tracer(sinks=[sink])
        tracer.begin_run("X")
        tracer.host_op(True, lpn=0, dur_us=200.0)
        tracer.close()
        [record] = [json.loads(l) for l in path.read_text().splitlines()]
        assert record["type"] == "HostWrite"
        assert sink._stream.closed


class TestRingBufferSink:
    def test_bounded(self):
        ring = RingBufferSink(capacity=3)
        tracer = Tracer(sinks=[ring])
        tracer.begin_run("X")
        for lpn in range(10):
            tracer.host_op(False, lpn=lpn, dur_us=25.0)
        assert len(ring) == 3
        assert ring.events_seen == 10
        assert [e.lpn for e in ring.events] == [7, 8, 9]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestStreamingHistogram:
    def test_buckets_power_of_two(self):
        h = StreamingHistogram("t")
        for v in (0.5, 1.0, 2.0, 3.0, 1000.0):
            h.add(v)
        uppers = dict(h.buckets())
        assert uppers[1.0] == 2   # 0.5 and 1.0
        assert uppers[2.0] == 1
        assert uppers[4.0] == 1   # 3.0 rounds up to the 4-bucket
        assert uppers[1024.0] == 1
        assert h.count == 5
        assert h.max == 1000.0

    def test_quantile_clamped_to_max(self):
        h = StreamingHistogram("t")
        h.add(1000.0)  # falls in the (512, 1024] bucket
        assert h.quantile(1.0) == 1000.0  # not 1024

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram("t").add(-1.0)

    def test_registry_reuses_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.counter("a").inc(3)
        assert registry.as_dict()["counters"]["a"] == 5
        assert registry.histogram("h") is registry.histogram("h")
