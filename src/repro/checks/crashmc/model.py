"""Shadow acknowledged-state model and the differential durability oracle.

The model checker replays a workload against a real FTL while this module
tracks what the host is *entitled to* after a crash.  The rules, in order
of strictness:

* **Acknowledged write** - once ``write(lpn, v)`` returns, ``v`` is
  durable: every post-recovery read of ``lpn`` must return exactly ``v``.
* **Unacknowledged (in-flight) write** - a write the power cut interrupted
  may surface as the old value or the new value, but never anything else
  (no torn third value, no silent disappearance of the *old* copy unless
  the new one took its place).
* **Acknowledged discard** - ``trim`` relaxes the contract: reads may
  return the pre-discard value or nothing at all.  A later acknowledged
  write re-tightens it.
* **Never-written page** - must read back empty; data appearing out of
  nowhere is a phantom (it means recovery resurrected a stale or foreign
  mapping).

The same model doubles as a replay-time read-your-writes check: while the
device is still powered, a read must return the last acknowledged value
(modulo the discard relaxation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class DurabilityViolation:
    """One broken durability rule, picklable for cross-process reporting.

    Attributes:
        kind: ``"lost_write"`` (acknowledged data gone), ``"torn_value"``
            (read returned a value never acknowledged and not the one
            in flight), ``"phantom"`` (data on a page the host never
            wrote), ``"replay"`` (read-your-writes broke before the
            crash), or ``"audit"`` (the flashsan full-state audit of the
            recovered instance failed).
        lpn: Logical page involved, when one is identifiable.
        message: Human-readable description with expected/actual values.
    """

    kind: str
    lpn: Optional[int]
    message: str

    def __str__(self) -> str:
        where = f" lpn={self.lpn}" if self.lpn is not None else ""
        return f"[{self.kind}]{where} {self.message}"


class ShadowModel:
    """Tracks acknowledged host state alongside a replay.

    Drive it with :meth:`begin` / :meth:`commit` around each mutating host
    op; if power is cut between the two, the op stays recorded as the
    single in-flight op whose effect is allowed-but-not-required after
    recovery.
    """

    def __init__(self, logical_pages: int):
        self.logical_pages = logical_pages
        #: lpn -> last acknowledged value (pages absent were never
        #: written or were discarded and have no obligation to hold data).
        self.acked: Dict[int, Any] = {}
        #: lpns whose last acknowledged mutating op was a discard: reads
        #: may return the retained pre-discard value or nothing.
        self.relaxed: Dict[int, Any] = {}
        #: The op the crash interrupted: ``(kind, lpn, value)`` or None.
        self.inflight: Optional[Tuple[str, int, Any]] = None
        self.acked_ops = 0

    # ------------------------------------------------------------------
    # Replay bookkeeping
    # ------------------------------------------------------------------
    def begin(self, kind: str, lpn: int, value: Any) -> None:
        """Record a mutating op as in flight before issuing it."""
        self.inflight = (kind, lpn, value)

    def commit(self) -> None:
        """The op returned: fold its effect into acknowledged state."""
        assert self.inflight is not None, "commit without begin"
        kind, lpn, value = self.inflight
        if kind == "w":
            self.acked[lpn] = value
            self.relaxed.pop(lpn, None)
        elif lpn in self.acked:
            # Discard: keep the old value around as the relaxed option.
            self.relaxed[lpn] = self.acked.pop(lpn)
        elif lpn not in self.relaxed:
            self.relaxed[lpn] = None
        # else: a repeated discard - the scheme may still retain the data
        # from before the *first* discard, so the entry is kept as is.
        self.inflight = None
        self.acked_ops += 1

    def check_read(self, lpn: int, got: Any) -> Optional[str]:
        """Read-your-writes check while the device is still powered.

        Returns an error message when the read is inconsistent with the
        acknowledged history, else None.
        """
        if lpn in self.acked:
            expected = self.acked[lpn]
            if got != expected:
                return (f"powered read returned {got!r}, last acknowledged "
                        f"write was {expected!r}")
            return None
        if lpn in self.relaxed:
            old = self.relaxed[lpn]
            if got is not None and got != old:
                return (f"powered read after discard returned {got!r}; "
                        f"only {old!r} or nothing is allowed")
            return None
        if got is not None:
            return f"powered read of never-written page returned {got!r}"
        return None

    # ------------------------------------------------------------------
    # Post-recovery oracle
    # ------------------------------------------------------------------
    def allowed_after_crash(self, lpn: int) -> Set[Any]:
        """The set of values a post-recovery read of ``lpn`` may return.

        ``None`` in the set stands for "no data" (an unmapped read).
        """
        allowed: Set[Any] = set()
        if lpn in self.acked:
            allowed.add(self.acked[lpn])
        elif lpn in self.relaxed:
            allowed.add(self.relaxed[lpn])
            allowed.add(None)
        else:
            allowed.add(None)
        if self.inflight is not None:
            kind, in_lpn, value = self.inflight
            if in_lpn == lpn:
                if kind == "w":
                    allowed.add(value)
                else:  # interrupted discard may or may not have landed
                    allowed.add(None)
        return allowed

    def oracle(
        self, read: Callable[[int], Any]
    ) -> List[DurabilityViolation]:
        """Read back every logical page and check it against the rules.

        Args:
            read: ``lpn -> recovered data`` (None for unmapped reads).
        """
        violations: List[DurabilityViolation] = []
        for lpn in range(self.logical_pages):
            got = read(lpn)
            allowed = self.allowed_after_crash(lpn)
            if got in allowed:
                continue
            if lpn in self.acked and got is None:
                kind = "lost_write"
                detail = (f"acknowledged write {self.acked[lpn]!r} "
                          "read back empty after recovery")
            elif lpn not in self.acked and lpn not in self.relaxed:
                kind = "phantom"
                detail = (f"never-written page read back {got!r} "
                          "after recovery")
            else:
                kind = "torn_value"
                detail = (f"recovered read returned {got!r}; allowed "
                          f"values were {sorted(map(repr, allowed))}")
            violations.append(DurabilityViolation(kind, lpn, detail))
        return violations


@dataclass(frozen=True)
class CrashPointResult:
    """Verdict for one crash point, picklable for parallel exploration.

    Attributes:
        crash_index: 0-based program/erase boundary the power cut hit
            (the fault trips just *before* the ``crash_index``-th flash
            mutation after arming).
        tripped: Whether the workload reached that boundary at all; a
            False with an in-range index means the case cut power cleanly
            after the final op instead.
        trip: The fault's trip-site report (empty when not tripped).
        acked_ops: Mutating host ops acknowledged before the cut.
        violations: Durability/audit violations found after recovery.
        mutated: Description of the deliberate post-recovery corruption
            applied in ``--mutate`` self-test mode (None otherwise).
    """

    crash_index: int
    tripped: bool
    trip: str
    acked_ops: int
    violations: Tuple[DurabilityViolation, ...]
    mutated: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CrashReport:
    """Aggregate verdict of one exhaustive crash exploration."""

    scheme: str
    seed: int
    num_ops: int
    boundaries: int
    results: List[CrashPointResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CrashPointResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def signature(self) -> str:
        """Deterministic digest of every verdict, for serial==parallel
        equivalence checks: identical exploration runs must produce
        identical signatures regardless of ``--jobs``."""
        parts = []
        for r in self.results:
            kinds = ",".join(
                f"{v.kind}@{v.lpn}" for v in r.violations
            )
            parts.append(
                f"{r.crash_index}:{int(r.tripped)}:{r.acked_ops}:{kinds}"
            )
        return f"{self.scheme}/{self.seed}/{self.num_ops}/" \
               f"{self.boundaries};" + ";".join(parts)
