"""Out-of-band (spare area) metadata stored alongside every flash page.

Real NAND pages carry a spare region (64+ bytes on 2 KiB pages) that FTLs use
for reverse mappings and consistency metadata.  LazyFTL's recovery design
depends on it: every data page records the logical page it holds and a
monotonically increasing sequence number, so that after a crash the update
and cold block areas can be scanned to rebuild the RAM-resident update
mapping table.
"""

from __future__ import annotations

from collections import namedtuple
from enum import Enum
from functools import partial

class PageKind(Enum):
    """What a physical page holds, as recorded in its OOB area."""

    DATA = "data"            #: a host data page
    MAPPING = "mapping"      #: a GMT / translation page
    CHECKPOINT = "checkpoint"  #: serialized GTD / UMT checkpoint state


_OOBBase = namedtuple("_OOBBase", ("lpn", "seq", "kind", "cold"))


class OOBData(_OOBBase):
    """Spare-area metadata written atomically with a page program.

    One OOBData is allocated per page program - a per-op hot path - so it
    is a validated named tuple rather than a frozen dataclass: tuple
    construction is a single C call, while a frozen dataclass pays an
    ``object.__setattr__`` per field.  Immutability (attribute assignment
    raises AttributeError) and field validation are preserved.

    Attributes:
        lpn: For ``DATA`` pages, the logical page stored here.  For
            ``MAPPING`` pages, the index of the mapping (translation) page.
            For ``CHECKPOINT`` pages, a fragment index.
        seq: Global program sequence number; strictly increases with every
            program on the device, letting recovery order duplicate copies of
            the same logical page.
        kind: The page's role (data / mapping / checkpoint).
        cold: LazyFTL flags pages relocated by garbage collection as cold so
            recovery can tell update-area pages from cold-area pages.
    """

    __slots__ = ()

    def __new__(
        cls,
        lpn: int,
        seq: int,
        kind: PageKind = PageKind.DATA,
        cold: bool = False,
    ) -> "OOBData":
        if lpn < 0:
            raise ValueError("lpn must be non-negative")
        if seq < 0:
            raise ValueError("seq must be non-negative")
        return tuple.__new__(cls, (lpn, seq, kind, cold))


#: Unvalidated constructor for per-program hot paths: builds an OOBData
#: from a ``(lpn, seq, kind, cold)`` 4-tuple via ``tuple.__new__``,
#: skipping the range checks in :meth:`OOBData.__new__` (and the Python
#: frame of namedtuple's ``_make``).  Only for call sites whose lpn/seq
#: provably come from frontier math and the :class:`SequenceCounter`
#: (both non-negative by construction).
make_oob = partial(tuple.__new__, OOBData)


class SequenceCounter:
    """Monotonic counter handing out OOB sequence numbers.

    A single counter is shared by all writers of one FTL instance so OOB
    sequence numbers establish a total order over every program operation.
    """

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("start must be non-negative")
        self._next = start

    @property
    def current(self) -> int:
        """The next value that will be handed out (not yet used)."""
        return self._next

    def next(self) -> int:
        """Return the next sequence number and advance the counter."""
        value = self._next
        self._next += 1
        return value

    def fast_forward(self, seen: int) -> None:
        """Ensure future values are strictly greater than ``seen``.

        Recovery uses this after scanning OOB areas so post-crash writes do
        not reuse sequence numbers.
        """
        if seen >= self._next:
            self._next = seen + 1
