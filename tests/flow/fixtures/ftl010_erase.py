# scope: ftl
"""Known-bad: block erase with no relocation evidence on any path.

``shrink`` erases a block without invalidating or relocating anything
first and without a liveness guard - live mappings may still point into
the erased block.
"""


class EagerEraser:
    def shrink(self, flash, pbn):
        flash.erase_block(pbn)  # expect: FTL010
        return pbn
