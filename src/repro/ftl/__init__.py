"""Flash translation layers: the shared framework and the baseline schemes.

* :class:`FlashTranslationLayer` / :class:`HostResult` - the FTL contract;
* :class:`PageFTL` - ideal page mapping (the theoretical optimum baseline);
* :class:`BastFTL` - block-associative log blocks (switch/partial/full
  merges);
* :class:`FastFTL` - fully-associative log blocks (long full-merge stalls);
* :class:`DftlFTL` - demand-cached page mapping (the strongest baseline);
* :class:`BlockPool`, GC policies and :class:`FtlStats` - shared machinery.

LazyFTL itself, the paper's contribution, lives in :mod:`repro.core`.
"""

from .base import UNMAPPED_READ_US, FlashTranslationLayer, HostResult
from .bast import BastFTL
from .dftl import DftlFTL
from .fast import FastFTL
from .last import LastFTL
from .nftl import NftlFTL
from .superblock import SuperblockFTL
from .gc_policy import select_cost_benefit, select_greedy
from .pool import BlockPool, OutOfBlocksError
from .pure_page import PageFTL
from .stats import FtlStats

__all__ = [
    "UNMAPPED_READ_US",
    "FlashTranslationLayer",
    "HostResult",
    "BastFTL",
    "DftlFTL",
    "FastFTL",
    "LastFTL",
    "NftlFTL",
    "SuperblockFTL",
    "PageFTL",
    "BlockPool",
    "OutOfBlocksError",
    "FtlStats",
    "select_cost_benefit",
    "select_greedy",
]
