"""A3 (ablation) - the extra baselines (LAST, superblock) under locality.

LAST (Lee et al. 2008) refines FAST with hot/cold-split log buffers that
reclaim dead blocks for free; the superblock FTL (Kang et al. 2006) keeps
page-level mapping inside small groups.  This ablation places both between
FAST and the global page-mapping schemes on a skewed workload - better
than FAST where locality exists, still far from LazyFTL.
"""

from repro.sim import HEADLINE_DEVICE, compare_schemes
from repro.sim.report import format_table
from repro.traces import hot_cold

from conftest import N_REQUESTS, emit

SCHEMES = ("FAST", "LAST", "superblock", "LazyFTL", "ideal")


def run_experiment():
    footprint = int(HEADLINE_DEVICE.logical_pages * 0.8)
    trace = hot_cold(N_REQUESTS, footprint, hot_fraction=0.004,
                     hot_probability=0.9, seed=0, name="hot-cold-90/0.4")
    return compare_schemes(trace, schemes=SCHEMES, device=HEADLINE_DEVICE,
                           precondition="steady")


def test_a03_last_baseline(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for scheme in SCHEMES:
        r = results[scheme]
        rows.append([
            scheme,
            r.mean_response_us,
            int(r.erases),
            r.ftl_stats.merges_full,
            r.ftl_stats.merge_page_copies,
        ])
    text = format_table(
        ["scheme", "mean_us", "erases", "full merges", "merge copies"],
        rows,
        title=f"A3: LAST vs FAST vs LazyFTL, 90/0.4 hot-spot workload "
              f"({N_REQUESTS} requests)",
    )
    emit("a03_last_baseline", text)

    # LAST and superblock exploit locality better than FAST...
    assert results["LAST"].mean_response_us < \
        results["FAST"].mean_response_us
    assert results["superblock"].mean_response_us < \
        results["FAST"].mean_response_us
    # ...but every locally-scoped scheme stays behind LazyFTL.
    assert results["LazyFTL"].mean_response_us < \
        results["LAST"].mean_response_us / 2
    assert results["LazyFTL"].mean_response_us < \
        results["superblock"].mean_response_us
    assert results["LazyFTL"].ftl_stats.merges_total == 0