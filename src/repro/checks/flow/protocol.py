"""FTL010: the page-lifecycle protocol, checked over paths.

LazyFTL's correctness argument (and every scheme's) rests on the strict
page lifecycle ``allocate -> program -> map-update -> invalidate-old ->
erase``.  This rule checks three flow properties of that protocol inside
``repro.core`` and ``repro.ftl``:

**A. update/invalidate pairing** - a function that reads the old mapping
of a key (``old_ppn = umt.ppn_at(lpn)``, ``old = gtd.get(tvpn)``) and
then updates the mapping on a path reachable from that read must carry
invalidation evidence somewhere on its paths: a direct ``invalidate*``
call, a call to a module-local helper whose summary invalidates, or a
local invalidation callback passed as an argument (LazyFTL's deferred
``commit(groups, self._deferred_invalidate)``).  A mapping rewrite with
the old PPN in hand and no invalidation anywhere leaks the old page as
permanently-valid garbage - the classic FTL leak.

**B. frontier PPNs are programmed before they escape** - a variable
computed from a write frontier (the ``frontier * pages_per_block +
write_ptr`` idiom, or an ``alloc_page``-style call) must pass through a
``program_page`` call on every path before it escapes the function
(return, attribute/subscript store, or handed to a non-programming
call).  The *inline-program* idiom of the hot paths counts as
programming evidence too: stamping ``page.oob = make_oob(...)`` on a
page object that was itself indexed by the frontier's write pointer
(``page = block.pages[wp]`` with ``wp`` appearing in the PPN
arithmetic) is the in-place twin of the ``program_page`` call.
Exception paths are exempt: unwinding without programming is the
crash-model's business (crashmc), not a protocol leak.

**C. erase only with relocation evidence** - a statement that (directly)
erases a block must be preceded on its paths by invalidation/relocation
evidence (an ``invalidate*``/``program*`` call or a helper summarising
one), or carry that evidence itself via a summarised callee.  Functions
whose own name marks them as the erase primitive (``erase``/``recycle``/
``retire``) are exempt; their *callers* inherit the obligation through
the call-graph summaries.

Suppress intentional exceptions per line with ``# ftlint:
disable=FTL010`` and a reason, as usual.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .base import FlowRule, FunctionAnalysis
from .cfg import CFG, BasicBlock
from .summaries import (
    ModuleSummaries,
    ProtocolEvent,
    call_name_chain,
    classify_call,
    is_map_subscript_store,
    resolve_chain,
)

#: Page-granular allocation call names (block-granular ``allocate()`` is
#: legitimate to push into an area unprogrammed, so it is *not* here).
_PAGE_ALLOC_NAMES = frozenset({
    "alloc_page", "next_ppn", "take_page", "claim_page", "reserve_page",
    "claim_ppn",
})

#: Function-name fragments marking the erase primitive itself.
_ERASE_PRIMITIVES = ("erase", "recycle", "retire", "scrub")


def _expr_load_names(node: ast.AST) -> Set[str]:
    return {
        sub.id for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def _is_frontier_arith(value: ast.expr) -> bool:
    """The repo's PPN-forming idiom: arithmetic over a frontier."""
    if not isinstance(value, ast.BinOp):
        return False
    names = set()
    for sub in ast.walk(value):
        if isinstance(sub, ast.Name):
            names.add(sub.id.lower())
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr.lower())
    return any("frontier" in name for name in names)


class PpnLifecycleRule(FlowRule):
    RULE_ID = "FTL010"
    MESSAGE = ("page-lifecycle protocol: mapping updates pair with "
               "invalidation, frontier PPNs are programmed before they "
               "escape, blocks are erased only after relocation")
    SCOPES = frozenset({"core", "ftl"})

    # ------------------------------------------------------------------
    def check_function(self, analysis: FunctionAnalysis,
                       summaries: ModuleSummaries,
                       tree: ast.Module) -> None:
        cfg = analysis.cfg
        aliases = analysis.aliases
        stmts = [(b, i, s) for b, i, s in cfg.statements()]

        map_reads: List[Tuple[ast.stmt, str]] = []
        map_writes: List[ast.stmt] = []
        invalidate_evidence: List[ast.stmt] = []
        program_stmts: Dict[str, List[ast.stmt]] = {}
        frontier_defs: List[Tuple[ast.stmt, str]] = []
        erase_stmts: List[Tuple[ast.stmt, ast.Call]] = []
        relocation_evidence: List[ast.stmt] = []

        for _block, _index, stmt in stmts:
            stmt_events = ProtocolEvent.NONE
            stmt_calls = self._stmt_calls(stmt)
            for call in stmt_calls:
                events = summaries.call_events(call, aliases)
                direct = classify_call(call, aliases)
                stmt_events |= events
                if direct & ProtocolEvent.ERASE:
                    erase_stmts.append((stmt, call))
                if events & ProtocolEvent.PROGRAM:
                    for name in self._call_arg_names(call):
                        program_stmts.setdefault(name, []).append(stmt)
            if stmt_events & ProtocolEvent.INVALIDATE:
                invalidate_evidence.append(stmt)
            if stmt_events & (ProtocolEvent.INVALIDATE
                              | ProtocolEvent.PROGRAM):
                relocation_evidence.append(stmt)
            if (stmt_events & ProtocolEvent.MAP_WRITE) \
                    or is_map_subscript_store(stmt, aliases):
                map_writes.append(stmt)

            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target = stmt.targets[0].id
                value = stmt.value
                value_calls = [n for n in ast.walk(value)
                               if isinstance(n, ast.Call)]
                if any(classify_call(c, aliases) & ProtocolEvent.MAP_READ
                       for c in value_calls):
                    map_reads.append((stmt, target))
                if _is_frontier_arith(value) or any(
                    resolve_chain(c.func, aliases)
                    and resolve_chain(c.func, aliases)[-1].lower()
                    in _PAGE_ALLOC_NAMES
                    for c in value_calls
                ):
                    frontier_defs.append((stmt, target))

        self._add_inline_program_evidence(stmts, frontier_defs,
                                          program_stmts)
        self._check_pairing(analysis, map_reads, map_writes,
                            invalidate_evidence)
        self._check_frontier_escape(analysis, frontier_defs,
                                    program_stmts, aliases)
        self._check_erase(analysis, erase_stmts, relocation_evidence)

    # -- inline-program recognition ------------------------------------
    @classmethod
    def _add_inline_program_evidence(
        cls,
        stmts: List[Tuple[BasicBlock, int, ast.stmt]],
        frontier_defs: List[Tuple[ast.stmt, str]],
        program_stmts: Dict[str, List[ast.stmt]],
    ) -> None:
        """Count ``page.oob = make_oob(...)`` as programming the frontier.

        The untraced fast paths program in place instead of calling
        ``flash.program_page``: they look the frontier page up by write
        pointer (``page = block.pages[wp]``), flip its state and stamp
        its OOB.  The page subscript and the PPN arithmetic share the
        write-pointer name, which is how the two are tied back together
        here - an OOB stamp on a page indexed by an unrelated variable
        earns no evidence.
        """
        if not frontier_defs:
            return
        page_defs: Dict[str, Set[str]] = {}
        oob_stamps: List[Tuple[ast.stmt, str]] = []  # (stmt, page var)
        for _block, _index, stmt in stmts:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if isinstance(target, ast.Name) \
                    and isinstance(stmt.value, ast.Subscript):
                page_defs.setdefault(target.id, set()).update(
                    _expr_load_names(stmt.value.slice)
                )
            elif isinstance(target, ast.Attribute) \
                    and target.attr == "oob" \
                    and isinstance(target.value, ast.Name) \
                    and any(isinstance(n, ast.Call)
                            for n in ast.walk(stmt.value)):
                oob_stamps.append((stmt, target.value.id))
        if not oob_stamps:
            return
        for def_stmt, var in frontier_defs:
            frontier_names = _expr_load_names(def_stmt.value)
            for stmt, page_var in oob_stamps:
                if page_defs.get(page_var, set()) & frontier_names:
                    program_stmts.setdefault(var, []).append(stmt)

    # -- A: update/invalidate pairing ----------------------------------
    def _check_pairing(self, analysis: FunctionAnalysis,
                       map_reads: List[Tuple[ast.stmt, str]],
                       map_writes: List[ast.stmt],
                       invalidate_evidence: List[ast.stmt]) -> None:
        if not map_writes or not map_reads:
            return
        if invalidate_evidence:
            # Some path carries invalidation; with deferred invalidation
            # a path-exact pairing is scheme policy, not a flow error.
            return
        for write in map_writes:
            for read, var in map_reads:
                if write is read:
                    continue
                if self._stmt_reaches(analysis, read, write):
                    self.report(
                        write,
                        "mapping update is reachable from the old-"
                        f"mapping read of '{var}' (line "
                        f"{getattr(read, 'lineno', '?')}) but no path in "
                        "this function invalidates the old physical "
                        "page; the superseded copy stays valid forever",
                    )
                    break

    # -- B: frontier PPN escapes ---------------------------------------
    def _check_frontier_escape(
        self, analysis: FunctionAnalysis,
        frontier_defs: List[Tuple[ast.stmt, str]],
        program_stmts: Dict[str, List[ast.stmt]],
        aliases: Dict[str, Tuple[str, ...]],
    ) -> None:
        cfg = analysis.cfg
        for def_stmt, var in frontier_defs:
            programs = program_stmts.get(var, [])
            escapes = self._escape_sites(cfg, def_stmt, var, programs,
                                         aliases)
            for escape in escapes:
                if self._path_between_avoiding(analysis, def_stmt,
                                               escape, programs):
                    self.report(
                        escape,
                        f"frontier PPN '{var}' (allocated at line "
                        f"{getattr(def_stmt, 'lineno', '?')}) escapes "
                        "without being programmed on some path; a "
                        "reserved page would leak unwritten",
                    )
                    break

    def _escape_sites(self, cfg: CFG, def_stmt: ast.stmt, var: str,
                      programs: List[ast.stmt],
                      aliases: Dict[str, Tuple[str, ...]]
                      ) -> List[ast.stmt]:
        program_ids = {id(s) for s in programs}
        escapes: List[ast.stmt] = []
        for _block, _index, stmt in cfg.statements():
            if stmt is def_stmt or id(stmt) in program_ids:
                continue
            if isinstance(stmt, ast.Return):
                if stmt.value is not None \
                        and var in _expr_load_names(stmt.value):
                    escapes.append(stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) \
                            and var in _expr_load_names(stmt.value):
                        escapes.append(stmt)
                        break
            else:
                for call in self._stmt_calls(stmt):
                    if var in self._call_arg_names(call):
                        escapes.append(stmt)
                        break
        return escapes

    # -- C: erase with relocation evidence -----------------------------
    def _check_erase(self, analysis: FunctionAnalysis,
                     erase_stmts: List[Tuple[ast.stmt, ast.Call]],
                     relocation_evidence: List[ast.stmt]) -> None:
        func_name = analysis.func.name.lower()
        if any(marker in func_name for marker in _ERASE_PRIMITIVES):
            return  # the primitive itself; callers carry the obligation
        guarded = self._validity_guarded_stmts(analysis.func)
        for stmt, call in erase_stmts:
            if id(stmt) in guarded:
                # Dominated by a liveness test (``valid_count == 0`` and
                # friends): the guard *is* the relocation evidence - the
                # block was observed dead before the erase.
                continue
            evidence = [s for s in relocation_evidence if s is not stmt]
            if any(self._stmt_reaches(analysis, ev, stmt)
                   for ev in evidence):
                continue
            self.report(
                stmt,
                "block erase with no invalidation/relocation evidence "
                "on any path before it in this function; live mappings "
                "may still point into the erased block",
            )

    #: Name fragments whose presence in a branch test marks it as a
    #: block-liveness check.
    _VALIDITY_FRAGMENTS = ("valid", "empty", "stale", "live", "free")

    @classmethod
    def _validity_guarded_stmts(cls, func: ast.FunctionDef) -> Set[int]:
        """ids of statements nested under an If/While whose test reads a
        liveness attribute (``valid_count``, ``is_empty``, ...)."""
        guarded: Set[int] = set()
        for node in ast.walk(func):
            if not isinstance(node, (ast.If, ast.While)):
                continue
            mentions = set()
            for sub in ast.walk(node.test):
                if isinstance(sub, ast.Attribute):
                    mentions.add(sub.attr.lower())
                elif isinstance(sub, ast.Name):
                    mentions.add(sub.id.lower())
            if not any(frag in name for name in mentions
                       for frag in cls._VALIDITY_FRAGMENTS):
                continue
            for branch in (node.body, getattr(node, "orelse", [])):
                for stmt in branch:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.stmt):
                            guarded.add(id(sub))
        return guarded

    # -- plumbing ------------------------------------------------------
    @staticmethod
    def _stmt_calls(stmt: ast.stmt) -> List[ast.Call]:
        from .summaries import _header_exprs
        calls: List[ast.Call] = []
        for root in _header_exprs(stmt):
            calls.extend(n for n in ast.walk(root)
                         if isinstance(n, ast.Call))
        return calls

    @staticmethod
    def _call_arg_names(call: ast.Call) -> Set[str]:
        names: Set[str] = set()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            names |= _expr_load_names(arg)
        return names

    @staticmethod
    def _stmt_reaches(analysis: FunctionAnalysis, a: ast.stmt,
                      b: ast.stmt) -> bool:
        """True when statement ``b`` may execute after ``a``."""
        cfg = analysis.cfg
        block_a, index_a = cfg.position_of(a)
        block_b, index_b = cfg.position_of(b)
        if block_a is block_b and index_a < index_b:
            return True
        seen: Set[int] = set()
        stack = list(block_a.succs)
        while stack:
            block = stack.pop()
            if block.bid in seen:
                continue
            seen.add(block.bid)
            if block is block_b:
                return True
            stack.extend(block.succs)
        return False

    @staticmethod
    def _path_between_avoiding(analysis: FunctionAnalysis,
                               start: ast.stmt, goal: ast.stmt,
                               avoid: List[ast.stmt]) -> bool:
        """True when some path from after ``start`` reaches ``goal``
        without executing any ``avoid`` statement."""
        cfg = analysis.cfg
        avoid_ids = {id(s) for s in avoid}
        start_block, start_index = cfg.position_of(start)
        goal_block, goal_index = cfg.position_of(goal)

        def segment_clear(block: BasicBlock, lo: int, hi: int) -> bool:
            return not any(id(s) in avoid_ids
                           for s in block.stmts[lo:hi])

        if start_block is goal_block and start_index < goal_index:
            if segment_clear(start_block, start_index + 1, goal_index):
                return True
        # DFS block-wise: leave start block (clear tail), traverse clear
        # blocks, enter goal block (clear prefix).
        if not segment_clear(start_block, start_index + 1,
                             len(start_block.stmts)):
            return False
        seen: Set[int] = set()
        stack = list(start_block.succs)
        while stack:
            block = stack.pop()
            if block.bid in seen:
                continue
            seen.add(block.bid)
            if block is goal_block:
                if segment_clear(block, 0, goal_index):
                    return True
                continue
            if segment_clear(block, 0, len(block.stmts)):
                stack.extend(block.succs)
        return False
