# scope: core
"""Known-bad: mapping write, then a may-raise call, all swallowed.

If ``program_page`` throws after the UMT was updated, the handler
swallows the exception and the caller continues with the mapping
pointing at a page that was never written - torn state flashsan would
only catch at audit time.
"""


class TornUpdate:
    def apply(self, lpn, ppn):
        try:
            self._umt.set(lpn, ppn)  # expect: FTL011
            self.flash.program_page(ppn)
        except IOError:
            self.stats.errors += 1
