"""flashsan unit tests: every violation class seeded deliberately.

Each test drives the sanitizer into exactly one kind of contract breach
and asserts on the *structured* report (kind, addresses, history), the
property that separates flashsan from a pile of asserts.  A buggy FTL
fixture at the end shows the end-to-end behaviour the sanitizer exists
for: an FTL that skips an erase is caught at the faulting operation with
the op-history tail attached.
"""

import random
import warnings

import pytest

from repro.checks import (
    SanitizedFTL,
    SanitizedNandFlash,
    SanitizerViolation,
    ViolationKind,
    audit_ftl,
)
from repro.core import LazyConfig, LazyFTL
from repro.flash import (
    FlashGeometry,
    NandFlash,
    OOBData,
    ProgramError,
    RedundantInvalidateWarning,
    UNIT_TIMING,
)
from repro.ftl import DftlFTL, PageFTL
from repro.ftl.base import HostResult


GEOMETRY = FlashGeometry(num_blocks=8, pages_per_block=4, page_size=2048)


def make_flash(**kwargs):
    return SanitizedNandFlash(GEOMETRY, timing=UNIT_TIMING, **kwargs)


def catch(flash, fn):
    """Run ``fn``, return the Violation the sanitizer raised."""
    with pytest.raises(SanitizerViolation) as exc_info:
        fn()
    return exc_info.value.violation


class TestNandLegality:
    def test_program_without_erase(self):
        flash = make_flash()
        flash.program_page(0, "a", OOBData(lpn=3, seq=0))
        flash.invalidate_page(0)
        v = catch(flash, lambda: flash.program_page(0, "b"))
        assert v.kind is ViolationKind.PROGRAM_WITHOUT_ERASE
        assert v.pbn == 0
        assert v.ppn == 0
        assert "lpn=3" in v.message  # names the current owner

    def test_program_over_valid_page(self):
        flash = make_flash()
        flash.program_page(0, "a")
        v = catch(flash, lambda: flash.program_page(0, "b",
                                                    OOBData(lpn=7, seq=1)))
        assert v.kind is ViolationKind.PROGRAM_WITHOUT_ERASE
        assert v.lpn == 7  # the incoming write's lpn

    def test_program_out_of_order(self):
        flash = make_flash()
        v = catch(flash, lambda: flash.program_page(2, "x"))
        assert v.kind is ViolationKind.PROGRAM_OUT_OF_ORDER
        assert "write pointer at 0" in v.message

    def test_out_of_order_allowed_when_not_enforced(self):
        flash = make_flash()
        flash.enforce_sequential = False
        flash.program_page(2, "x")  # legal on this device

    def test_read_unwritten(self):
        flash = make_flash()
        v = catch(flash, lambda: flash.read_page(5))
        assert v.kind is ViolationKind.READ_UNWRITTEN
        assert v.pbn == 1 and v.ppn == 5

    def test_probe_of_unwritten_is_sanctioned(self):
        flash = make_flash()
        oob, _ = flash.probe_page(5)  # recovery-style scan: no violation
        assert oob is None

    def test_bad_block_program_and_erase(self):
        flash = make_flash()
        flash.blocks[1].mark_bad()  # ftlint: disable=FTL003 - seeding the fault
        v = catch(flash, lambda: flash.program_page(GEOMETRY.ppn_of(1, 0), "x"))
        assert v.kind is ViolationKind.BAD_BLOCK_OP
        v = catch(flash, lambda: flash.erase_block(1))
        assert v.kind is ViolationKind.BAD_BLOCK_OP

    def test_erase_with_valid_pages(self):
        flash = make_flash()
        flash.program_page(0, "a", OOBData(lpn=11, seq=0))
        v = catch(flash, lambda: flash.erase_block(0))
        assert v.kind is ViolationKind.ERASE_WITH_VALID
        assert "11" in v.message  # live lpn listed

    def test_double_invalidate(self):
        flash = make_flash()
        flash.program_page(0, "a")
        flash.invalidate_page(0)
        v = catch(flash, lambda: flash.invalidate_page(0))
        assert v.kind is ViolationKind.DOUBLE_INVALIDATE

    def test_invalidate_unwritten(self):
        flash = make_flash()
        v = catch(flash, lambda: flash.invalidate_page(0))
        assert v.kind is ViolationKind.INVALIDATE_UNWRITTEN


class TestReportStructure:
    def test_history_tail_attached(self):
        flash = make_flash(history=4)
        for ppn, value in enumerate("abcd"):
            flash.program_page(ppn, value, OOBData(lpn=ppn, seq=ppn))
        v = catch(flash, lambda: flash.read_page(7))
        assert len(v.history) == 4  # ring capacity
        assert [op.op for op in v.history] == ["program"] * 4
        assert v.history[-1].lpn == 3
        rendered = v.render()
        assert "read-unwritten-page" in rendered
        assert "last 4 flash ops" in rendered

    def test_record_mode_collects_without_raising(self):
        flash = make_flash(on_violation="record")
        with pytest.raises(ProgramError):
            # The sanitizer records; the chip still rejects the op.
            flash.program_page(2, "x")
        assert [v.kind for v in flash.violations] == [
            ViolationKind.PROGRAM_OUT_OF_ORDER
        ]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            make_flash(on_violation="explode")
        with pytest.raises(ValueError):
            SanitizedFTL(PageFTL(NandFlash(GEOMETRY), logical_pages=16),
                         on_violation="explode")

    def test_sanitizer_violation_is_not_a_flash_error(self):
        from repro.flash import FlashError

        flash = make_flash()
        try:
            flash.read_page(0)
        except FlashError:  # pragma: no cover - the bug this guards against
            pytest.fail("SanitizerViolation must not be catchable as "
                        "FlashError")
        except SanitizerViolation:
            pass


class TestRedundantInvalidate:
    """Satellite: the plain chip makes double-invalidates explicit too."""

    def test_plain_chip_warns_and_counts(self):
        chip = NandFlash(GEOMETRY, timing=UNIT_TIMING)
        chip.program_page(0, "a")
        chip.invalidate_page(0)
        with pytest.warns(RedundantInvalidateWarning):
            chip.invalidate_page(0)
        assert chip.stats.redundant_invalidates == 1

    def test_invalidate_of_unwritten_raises_on_plain_chip(self):
        chip = NandFlash(GEOMETRY, timing=UNIT_TIMING)
        with pytest.raises(ProgramError):
            chip.invalidate_page(0)

    def test_single_invalidate_stays_silent(self):
        chip = NandFlash(GEOMETRY, timing=UNIT_TIMING)
        chip.program_page(0, "a")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            chip.invalidate_page(0)
        assert chip.stats.redundant_invalidates == 0


class TestShadowMap:
    def test_read_your_writes_verified(self):
        flash = make_flash()
        ftl = SanitizedFTL(PageFTL(flash, logical_pages=16))
        ftl.write(3, "payload")
        assert ftl.read(3).data == "payload"

    def test_shadow_mismatch_detected(self):
        class LyingFTL(PageFTL):
            """Returns stale data for every read: a broken mapping."""

            def read(self, lpn):
                real = super().read(lpn)
                return HostResult(real.latency_us, data="stale!")

        flash = make_flash()
        ftl = SanitizedFTL(LyingFTL(flash, logical_pages=16))
        ftl.write(3, "payload")
        v = catch(ftl, lambda: ftl.read(3))
        assert v.kind is ViolationKind.SHADOW_MISMATCH
        assert v.lpn == 3
        assert "stale!" in v.message

    def test_trim_clears_shadow(self):
        flash = make_flash()
        ftl = SanitizedFTL(PageFTL(flash, logical_pages=16))
        ftl.write(3, "payload")
        ftl.trim(3)
        ftl.read(3)  # whatever comes back, no shadow entry to contradict

    def test_delegation_preserves_surface(self):
        flash = make_flash()
        ftl = SanitizedFTL(PageFTL(flash, logical_pages=16))
        assert ftl.flash is flash
        assert ftl.logical_pages == 16
        assert ftl.ram_bytes() > 0
        assert ftl.wrapped.name == "ideal"


class TestAuditors:
    """Seed each mapping-invariant breach and audit it out."""

    def small_page_ftl(self):
        flash = NandFlash(GEOMETRY, timing=UNIT_TIMING)
        ftl = PageFTL(flash, logical_pages=16)
        return flash, ftl

    def test_clean_audit(self):
        flash, ftl = self.small_page_ftl()
        for lpn in range(8):
            ftl.write(lpn, lpn)
        report = audit_ftl(ftl)
        assert report.clean
        assert report.checks_run > 0
        assert "audit clean" in report.render()

    def test_multi_owner(self):
        flash, ftl = self.small_page_ftl()
        ftl.write(1, "real")
        # A second VALID copy of lpn 1 appears behind the FTL's back.
        spare = flash.geometry.ppn_of(7, 0)
        flash.program_page(spare, "ghost", OOBData(lpn=1, seq=99))
        report = audit_ftl(ftl)
        kinds = {v.kind for v in report.violations}
        assert ViolationKind.MULTI_OWNER in kinds
        [v] = [v for v in report.violations
               if v.kind is ViolationKind.MULTI_OWNER]
        assert v.lpn == 1

    def test_counter_drift(self):
        flash, ftl = self.small_page_ftl()
        ftl.write(0, "x")
        block = next(b for b in flash.blocks if b.valid_count)
        block._valid_count += 1  # ftlint: disable=FTL003 - seeding the fault
        report = audit_ftl(ftl)
        assert any(v.kind is ViolationKind.COUNTER_DRIFT
                   and v.pbn == block.index
                   for v in report.violations)

    def test_oob_out_of_range(self):
        flash, ftl = self.small_page_ftl()
        spare = flash.geometry.ppn_of(7, 0)
        flash.program_page(spare, "junk", OOBData(lpn=9999, seq=1))
        report = audit_ftl(ftl)
        assert any(v.kind is ViolationKind.OOB_MISMATCH
                   for v in report.violations)


class TestDftlAudit:
    def make_dftl(self):
        flash = NandFlash(
            FlashGeometry(num_blocks=24, pages_per_block=8, page_size=64),
            timing=UNIT_TIMING,
        )
        ftl = DftlFTL(flash, logical_pages=96, cmt_entries=8)
        rng = random.Random(5)
        for i in range(300):
            ftl.write(rng.randrange(96), i)
        return flash, ftl

    def test_clean_after_pressure(self):
        _, ftl = self.make_dftl()
        assert audit_ftl(ftl).clean

    def test_dangling_cmt_entry(self):
        flash, ftl = self.make_dftl()
        lpn, entry = next(iter(ftl._cmt.items()))
        free_ppn = next(
            flash.geometry.ppn_of(b.index, b.write_ptr)
            for b in flash.blocks if b.free_count
        )
        entry.ppn = free_ppn  # points at a FREE page now
        report = audit_ftl(ftl)
        assert any(v.kind is ViolationKind.DANGLING_MAPPING
                   and v.lpn == lpn for v in report.violations)

    def test_clean_entry_translation_page_disagreement(self):
        flash, ftl = self.make_dftl()
        clean = [(lpn, e) for lpn, e in ftl._cmt.items()
                 if not e.dirty and e.ppn is not None]
        if not clean:  # evict everything clean: force one
            pytest.skip("no clean CMT entry under this workload")
        lpn, entry = clean[0]
        other = next(l for l, e in ftl._cmt.items() if l != lpn
                     and e.ppn is not None)
        entry.ppn = ftl._cmt[other].ppn  # valid page, wrong entry
        report = audit_ftl(ftl)
        assert any(v.kind is ViolationKind.CMT_INCONSISTENT
                   for v in report.violations)


class TestLazyFTLAudit:
    def make_lazy(self):
        flash = NandFlash(
            FlashGeometry(num_blocks=40, pages_per_block=8, page_size=64),
            timing=UNIT_TIMING,
        )
        config = LazyConfig(uba_blocks=4, cba_blocks=2, gc_free_threshold=3)
        ftl = LazyFTL(flash, logical_pages=96, config=config)
        rng = random.Random(6)
        for i in range(400):
            ftl.write(rng.randrange(96), i)
        return flash, ftl

    def test_clean_after_pressure(self):
        _, ftl = self.make_lazy()
        assert audit_ftl(ftl).clean

    def test_merge_breaks_zero_merge_invariant(self):
        _, ftl = self.make_lazy()
        ftl.stats.merges_full += 1
        report = audit_ftl(ftl)
        assert any(v.kind is ViolationKind.LAZY_MERGE
                   for v in report.violations)

    def test_leaked_stale_copy_detected(self):
        _, ftl = self.make_lazy()
        # Pick a pending UMT entry and drop it: its superseded GMT copy
        # (still VALID, by deferred invalidation) is now a leak.
        lpn = next(lpn for lpn, _ in ftl.umt.items())
        ftl.umt.pop(lpn)
        report = audit_ftl(ftl)
        assert not report.clean
        kinds = {v.kind for v in report.violations}
        assert (ViolationKind.GMT_INCONSISTENT in kinds
                or ViolationKind.MULTI_OWNER in kinds)

    def test_umt_entry_outside_staging_area(self):
        _, ftl = self.make_lazy()
        staging = set(ftl.uba_blocks) | set(ftl.cba_blocks)
        geometry = ftl.flash.geometry
        victim = None
        for block in ftl.flash.blocks:
            if block.index in staging:
                continue
            for offset, page in enumerate(block.pages):
                if (page.is_valid and page.oob is not None
                        and page.oob.kind.value == "data"):
                    victim = (page.oob.lpn,
                              geometry.ppn_of(block.index, offset))
                    break
            if victim:
                break
        assert victim is not None
        lpn, ppn = victim
        ftl.umt.set(lpn, ppn)  # UMT entry pointing outside UBA/CBA
        report = audit_ftl(ftl)
        assert any(v.kind is ViolationKind.UMT_INCONSISTENT
                   for v in report.violations)


class TestBuggyFTLEndToEnd:
    """The acceptance fixture: an FTL that skips erase-before-program is
    caught at the faulting op with a structured report and history."""

    def test_buggy_ftl_caught_with_structured_report(self):
        class InPlaceOverwriteFTL(PageFTL):
            """Overwrites a mapped lpn in place - the canonical FTL bug."""

            def write(self, lpn, data=None):
                ppn = self._map[lpn]
                if ppn is not None:
                    # Bug: reprogram the same physical page, no erase.
                    latency = self.flash.program_page(
                        ppn, data, OOBData(lpn=lpn, seq=0))
                    return HostResult(latency)
                return super().write(lpn, data)

        flash = make_flash()
        ftl = SanitizedFTL(InPlaceOverwriteFTL(flash, logical_pages=16))
        ftl.write(2, "first")
        with pytest.raises(SanitizerViolation) as exc_info:
            ftl.write(2, "second")
        v = exc_info.value.violation
        assert v.kind is ViolationKind.PROGRAM_WITHOUT_ERASE
        assert v.lpn == 2
        assert v.history  # the op trail is attached
        assert v.history[-1].op == "program"
        assert "program-without-erase" in str(exc_info.value)
