"""The flow rules (FTL010-FTL013) plus FTL009: fixtures and unit tests.

Two layers:

* the ``fixtures/`` corpus - known-bad snippets with ``# expect: FTLxxx``
  markers; every marked line must be flagged by exactly the marked rule
  (run with only the expected rules selected, so the corpus stays a
  precise per-rule contract);
* targeted positive/negative snippets per rule, exercising the flow
  machinery the fixtures cannot (call-graph summaries, callback credit,
  alias resolution, guard evidence, reaching-defs set-typing).
"""

import pathlib
import re
import textwrap

import pytest

from repro.checks.lint import ALL_RULES, lint_source

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent / "fixtures"
RULES_BY_ID = {rule.RULE_ID: rule for rule in ALL_RULES}
_EXPECT = re.compile(r"#\s*expect:\s*(FTL\d{3})")
_SCOPE = re.compile(r"#\s*scope:\s*(\w+)")


def lint(source, scope="core", rule_ids=None, path="fixture.py"):
    rules = None
    if rule_ids is not None:
        rules = [RULES_BY_ID[rid] for rid in rule_ids]
    return lint_source(textwrap.dedent(source), path=path, scope=scope,
                       rules=rules)


def flagged(source, rule_id, scope="core", path="fixture.py"):
    """(line, rule_id) pairs produced by one rule on one snippet."""
    return sorted({(v.line, v.rule_id)
                   for v in lint(source, scope=scope, rule_ids=[rule_id],
                                 path=path)})


# ----------------------------------------------------------------------
# The fixture corpus
# ----------------------------------------------------------------------
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))


def test_fixture_corpus_exists():
    names = {f.stem.split("_")[0] for f in FIXTURES}
    assert {"ftl009", "ftl010", "ftl011", "ftl012",
            "ftl013"} <= names


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda f: f.stem)
def test_fixture_is_flagged_exactly_as_marked(fixture):
    source = fixture.read_text(encoding="utf-8")
    scope_match = _SCOPE.search(source.splitlines()[0])
    assert scope_match, f"{fixture.name} missing '# scope:' header"
    scope = scope_match.group(1)

    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        for rule_id in _EXPECT.findall(line):
            expected.add((lineno, rule_id))
    assert expected, f"{fixture.name} has no '# expect:' markers"

    rule_ids = sorted({rule_id for _, rule_id in expected})
    violations = lint_source(
        source, path=str(fixture), scope=scope,
        rules=[RULES_BY_ID[rid] for rid in rule_ids],
    )
    got = {(v.line, v.rule_id) for v in violations}
    assert got == expected


# ----------------------------------------------------------------------
# FTL010 sub-check A: update/invalidate pairing
# ----------------------------------------------------------------------
class TestPairing:
    def test_direct_invalidate_satisfies(self):
        assert flagged("""
            class M:
                def remap(self, lpn, new_ppn):
                    old = self._umt.ppn_at(lpn)
                    if old is not None:
                        self.flash.invalidate_page(old)
                    self._umt.set(lpn, new_ppn)
        """, "FTL010") == []

    def test_helper_summary_satisfies(self):
        # The invalidation happens inside a module-local helper; the
        # call-graph summary must credit it.
        assert flagged("""
            class M:
                def _retire(self, ppn):
                    self.flash.invalidate_page(ppn)

                def remap(self, lpn, new_ppn):
                    old = self._umt.ppn_at(lpn)
                    self._retire(old)
                    self._umt.set(lpn, new_ppn)
        """, "FTL010") == []

    def test_callback_argument_satisfies(self):
        # LazyFTL's deferred invalidation: the invalidating function is
        # *passed* to commit(), never called directly here.
        assert flagged("""
            class M:
                def _deferred_invalidate(self, ppn):
                    self.flash.invalidate_page(ppn)

                def convert(self, groups):
                    old = self.gtd.get(0)
                    self.cmt.commit(groups, self._deferred_invalidate)
        """, "FTL010") == []

    def test_aliased_table_write_is_detected(self):
        # Pre-bound method idiom: the write goes through a local alias.
        assert flagged("""
            class M:
                def remap(self, lpn, new_ppn):
                    umt_set = self._umt.set
                    old = self._umt.ppn_at(lpn)
                    umt_set(lpn, new_ppn)
        """, "FTL010") == [(6, "FTL010")]

    def test_local_staging_dict_is_not_mapping_state(self):
        # Recovery-style scratch dicts are not protocol state.
        assert flagged("""
            def rebuild(oobs):
                map_best = {}
                prev = map_best.get(3)
                map_best.update({3: prev})
                return map_best
        """, "FTL010") == []

    def test_write_before_read_not_flagged(self):
        # The write is not reachable from the read: no pairing demand.
        assert flagged("""
            class M:
                def remap(self, lpn, new_ppn):
                    self._umt.set(lpn, new_ppn)
                    old = self._umt.ppn_at(lpn)
                    return old
        """, "FTL010") == []


# ----------------------------------------------------------------------
# FTL010 sub-check B: frontier PPNs programmed before escaping
# ----------------------------------------------------------------------
class TestFrontierEscape:
    def test_programmed_on_every_path_ok(self):
        assert flagged("""
            class M:
                def write(self, data):
                    ppn = self.frontier * self.pages_per_block + self.ptr
                    self.flash.program_page(ppn, data)
                    return ppn
        """, "FTL010") == []

    def test_escape_via_return_on_unprogrammed_path(self):
        assert flagged("""
            class M:
                def write(self, data, fast):
                    ppn = self.frontier * self.pages_per_block + self.ptr
                    if fast:
                        return ppn
                    self.flash.program_page(ppn, data)
                    return ppn
        """, "FTL010") == [(6, "FTL010")]

    def test_alloc_page_call_counts_as_frontier_def(self):
        assert flagged("""
            class M:
                def take(self):
                    ppn = self.pool.alloc_page()
                    self.pending = ppn
        """, "FTL010") == [(5, "FTL010")]

    def test_aliased_program_call_counts(self):
        # program_page pre-bound to a local, as the hot paths do.
        assert flagged("""
            class M:
                def write(self, data):
                    program_page = self.flash.program_page
                    ppn = self.frontier * self.pages_per_block + self.ptr
                    program_page(ppn, data)
                    return ppn
        """, "FTL010") == []

    def test_inline_oob_stamp_counts_as_program(self):
        # The untraced fast paths program in place: the page is indexed
        # by the same write pointer that forms the PPN, and stamping its
        # OOB is the program step.
        assert flagged("""
            class M:
                def write(self, block, data, lpn):
                    wp = block.write_ptr
                    ppn = self.frontier * self.pages_per_block + wp
                    page = block.pages[wp]
                    page.state = VALID
                    page.data = data
                    page.oob = make_oob(lpn, self.seq)
                    self.umt.set(lpn, ppn)
                    return ppn
        """, "FTL010") == []

    def test_oob_stamp_on_unrelated_page_earns_no_credit(self):
        # OOB written to a page indexed by something other than the
        # frontier's write pointer does not program the frontier PPN.
        assert flagged("""
            class M:
                def write(self, block, data, lpn, other):
                    wp = block.write_ptr
                    ppn = self.frontier * self.pages_per_block + wp
                    page = block.pages[other]
                    page.oob = make_oob(lpn, self.seq)
                    self.umt.set(lpn, ppn)
        """, "FTL010") == [(8, "FTL010")]


# ----------------------------------------------------------------------
# FTL010 sub-check C: erase with relocation evidence
# ----------------------------------------------------------------------
class TestErase:
    def test_relocation_before_erase_ok(self):
        assert flagged("""
            class M:
                def collect(self, victim):
                    for ppn in victim.valid_ppns():
                        self.flash.invalidate_page(ppn)
                    self.flash.erase_block(victim.pbn)
        """, "FTL010") == []

    def test_validity_guard_counts_as_evidence(self):
        assert flagged("""
            class M:
                def reclaim(self, pbn):
                    if self.flash.block(pbn).valid_count == 0:
                        self.flash.erase_block(pbn)
        """, "FTL010") == []

    def test_erase_primitive_function_exempt(self):
        assert flagged("""
            class M:
                def _erase(self, pbn):
                    self.flash.erase_block(pbn)
        """, "FTL010") == []

    def test_erase_counts_accessor_not_an_erase(self):
        assert flagged("""
            class M:
                def wear(self):
                    counts = self.flash.erase_counts()
                    return max(counts)
        """, "FTL010") == []


# ----------------------------------------------------------------------
# FTL011: torn mapping state
# ----------------------------------------------------------------------
class TestTornState:
    def test_reraising_handler_ok(self):
        assert flagged("""
            class M:
                def apply(self, lpn, ppn):
                    try:
                        self._umt.set(lpn, ppn)
                        self.flash.program_page(ppn)
                    except IOError:
                        self._umt.set(lpn, None)
                        raise
        """, "FTL011") == []

    def test_write_after_last_raiser_ok(self):
        # Nothing can throw after the mapping write: state never tears.
        assert flagged("""
            class M:
                def apply(self, lpn, ppn):
                    try:
                        self.flash.program_page(ppn)
                        self._umt.set(lpn, ppn)
                    except IOError:
                        self.stats.errors += 1
        """, "FTL011") == []

    def test_subscript_store_counts_as_map_write(self):
        assert flagged("""
            class M:
                def apply(self, lpn, ppn):
                    try:
                        self._cmt[lpn] = ppn
                        self.flash.program_page(ppn)
                    except IOError:
                        self.stats.errors += 1
        """, "FTL011") == [(5, "FTL011")]

    def test_try_finally_without_handlers_ok(self):
        assert flagged("""
            class M:
                def apply(self, lpn, ppn):
                    try:
                        self._umt.set(lpn, ppn)
                        self.flash.program_page(ppn)
                    finally:
                        self.stats.ops += 1
        """, "FTL011") == []


# ----------------------------------------------------------------------
# FTL012: set iteration determinism
# ----------------------------------------------------------------------
class TestSetIteration:
    def test_sorted_iteration_ok(self):
        assert flagged("""
            def f():
                pending = set()
                for lpn in sorted(pending):
                    print(lpn)
        """, "FTL012", scope="sim") == []

    def test_membership_and_reductions_ok(self):
        assert flagged("""
            def f(x):
                pending = set()
                hit = x in pending
                return len(pending), min(pending), hit
        """, "FTL012", scope="sim") == []

    def test_self_attribute_set_iteration_flagged(self):
        assert flagged("""
            class A:
                def __init__(self):
                    self._members = set()

                def drain(self):
                    for m in self._members:
                        print(m)
        """, "FTL012", scope="sim") == [(7, "FTL012")]

    def test_attr_rebound_to_non_set_not_flagged(self):
        # A conflicting non-set assignment disqualifies the attribute.
        assert flagged("""
            class A:
                def __init__(self):
                    self._members = set()

                def freeze(self):
                    self._members = sorted(self._members)

                def drain(self):
                    for m in self._members:
                        print(m)
        """, "FTL012", scope="sim") == []

    def test_reaching_defs_distinguish_paths(self):
        # Only the set-typed definition reaches the first loop; the
        # second loop sees the sorted list and must not be flagged.
        assert flagged("""
            def f(xs):
                order = set(xs)
                for x in order:
                    print(x)
                order = sorted(xs)
                for x in order:
                    print(x)
        """, "FTL012", scope="sim") == [(4, "FTL012")]


# ----------------------------------------------------------------------
# FTL013: hot-loop safety
# ----------------------------------------------------------------------
class TestHotLoop:
    def test_unmarked_function_exempt(self):
        assert flagged("""
            def cold(rows):
                for op in rows:
                    fn = lambda v: v + 1
                return fn
        """, "FTL013", scope="sim") == []

    def test_replay_registry_is_hot_by_name(self):
        assert flagged("""
            def _replay_fast(self, trace, responses):
                for op in trace.ops:
                    fn = lambda v: v + 1
                return fn
        """, "FTL013", scope="sim",
            path="src/repro/sim/simulator.py") == [(4, "FTL013")]

    def test_prebound_lookup_ok(self):
        assert flagged("""
            class R:
                # flowlint: hot
                def drain(self, rows):
                    read_us = self.device.timing.read_us
                    total = 0
                    for op in rows:
                        total += read_us
                        total -= read_us
                    return total
        """, "FTL013", scope="sim") == []

    def test_rebound_root_exempt(self):
        # The root is refetched inside the loop (frontier rotation):
        # repeated lookups through it are legitimate.
        assert flagged("""
            class R:
                # flowlint: hot
                def drain(self, rows):
                    frontier = self.frontier
                    total = 0
                    for op in rows:
                        total += frontier.ptr
                        frontier = self.rotate(frontier)
                        total -= frontier.ptr
                    return total
        """, "FTL013", scope="sim") == []

    def test_none_guarded_tracer_exempt(self):
        assert flagged("""
            class R:
                # flowlint: hot
                def drain(self, rows, tracer):
                    total = 0
                    for op in rows:
                        if tracer is not None:
                            tracer.emit(op)
                            tracer.tick(op)
                        total += 1
                    return total
        """, "FTL013", scope="sim") == []


# ----------------------------------------------------------------------
# FTL009 + the recovery regression it was written for
# ----------------------------------------------------------------------
class TestSetRebuild:
    def test_loop_variant_set_not_flagged(self):
        # The set depends on the loop variable: not hoistable.
        assert flagged("""
            def f(groups, scanned):
                out = []
                for g in groups:
                    if g.pbn in set(g.peers):
                        out.append(g)
                return out
        """, "FTL009") == []

    def test_prebuilt_frozenset_not_flagged(self):
        assert flagged("""
            def f(candidates, scanned):
                scanned = frozenset(scanned)
                return [b for b in candidates if b not in scanned]
        """, "FTL009") == []

    def test_recovery_module_is_clean(self):
        # Regression: recovery.py:340 rebuilt set(full_scan) per
        # candidate; the prebuilt frozenset fix must keep it clean.
        recovery = (pathlib.Path(__file__).resolve().parents[2]
                    / "src" / "repro" / "core" / "recovery.py")
        source = recovery.read_text(encoding="utf-8")
        violations = lint_source(source, path=str(recovery),
                                 scope="core",
                                 rules=[RULES_BY_ID["FTL009"]])
        assert violations == []
        assert "frozenset(full_scan)" in source
