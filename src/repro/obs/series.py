"""Windowed time-series over the simulated clock.

The attribution sink and the latency recorder aggregate over a whole run;
this module keeps the *trajectory*: fixed-width windows of simulated time
(default 0.1 s) holding ops/s, write amplification, GC debt, the
translation-cache hit-rate estimate, erase-count variance and per-cause
stall fractions.  Windows live in a bounded ring (oldest evicted first,
**counted** in :attr:`SeriesCollector.windows_dropped` - never silently),
and export as JSONL (one window per line) or Prometheus-style text
exposition for scraping a live service frontend later (ROADMAP item 2).

Metric definitions (documented once, used by report + exposition):

* ``ops_per_sec`` - host page ops completed in the window / window span;
* ``waf`` - raw page programs / host page writes in the window (write
  amplification factor; ``None`` when the window saw no host write);
* ``gc_debt_pages`` - valid pages relocated by GC + merges in the window
  (the cleaning backlog actually paid, in pages);
* ``map_hit_rate`` - 1 - translation-page reads per host op, clamped to
  [0, 1]: the UMT/CMT hit-rate estimate observable from the event stream
  (each MapRead is a cache miss that went to flash);
* ``erase_variance`` - population variance of per-block erase counts at
  window close (cumulative; over all blocks when ``num_blocks`` is
  given, else over blocks seen erasing);
* ``stall_fractions`` - per-cause share of the window's flash time.

A :class:`SeriesCollector` is a plain :class:`~repro.obs.sinks.TraceSink`:
pass it to the tracer's sink list.  State is keyed by scheme (the tracer
clock restarts per scheme in a comparison run).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, TextIO, Union

from .events import FLASH_OP_TYPES, EventType, TraceEvent
from .sinks import TraceSink

#: Version stamp of the per-window JSONL record layout.
SERIES_SCHEMA_VERSION = 1

#: Default window width in simulated microseconds (0.1 s).
DEFAULT_WINDOW_US = 100_000.0


class Window:
    """Raw per-window counters; derived metrics come from :meth:`as_dict`."""

    __slots__ = ("index", "host_reads", "host_writes", "host_trims",
                 "page_reads", "page_programs", "block_erases",
                 "map_reads", "map_writes", "gc_runs", "converts",
                 "gc_copy_pages", "channel_wait_us", "time_by_cause")

    def __init__(self, index: int):
        self.index = index
        self.host_reads = 0
        self.host_writes = 0
        self.host_trims = 0
        self.page_reads = 0
        self.page_programs = 0
        self.block_erases = 0
        self.map_reads = 0
        self.map_writes = 0
        self.gc_runs = 0
        self.converts = 0
        self.gc_copy_pages = 0
        # Stripe-imbalance wait on a multi-channel device (see
        # Tracer.channel_wait); 0.0 on serial devices.
        self.channel_wait_us = 0.0
        self.time_by_cause: Dict[str, float] = {}

    @property
    def host_ops(self) -> int:
        return self.host_reads + self.host_writes + self.host_trims

    def as_dict(self, window_us: float,
                erase_variance: float) -> Dict[str, object]:
        flash_us = sum(self.time_by_cause.values())
        host_ops = self.host_ops
        waf = (self.page_programs / self.host_writes
               if self.host_writes else None)
        map_hit = (max(0.0, min(1.0, 1.0 - self.map_reads / host_ops))
                   if host_ops else None)
        return {
            "schema": SERIES_SCHEMA_VERSION,
            "window": self.index,
            "t_us": self.index * window_us,
            "window_us": window_us,
            "host_ops": host_ops,
            "ops_per_sec": host_ops / (window_us / 1e6),
            "host_reads": self.host_reads,
            "host_writes": self.host_writes,
            "host_trims": self.host_trims,
            "page_reads": self.page_reads,
            "page_programs": self.page_programs,
            "block_erases": self.block_erases,
            "map_reads": self.map_reads,
            "map_writes": self.map_writes,
            "gc_runs": self.gc_runs,
            "converts": self.converts,
            "waf": waf,
            "gc_debt_pages": self.gc_copy_pages,
            "channel_wait_us": round(self.channel_wait_us, 3),
            "map_hit_rate": map_hit,
            "erase_variance": erase_variance,
            "flash_time_us": round(flash_us, 3),
            "stall_fractions": {
                cause: spent / flash_us
                for cause, spent in sorted(self.time_by_cause.items())
            } if flash_us > 0 else {},
        }


class _SchemeSeries:
    """Ring of closed windows plus the one being filled, for one scheme."""

    __slots__ = ("ring", "current", "dropped", "erase_counts")

    def __init__(self, capacity: int):
        self.ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self.current: Optional[Window] = None
        self.dropped = 0
        self.erase_counts: Dict[int, int] = {}


class SeriesCollector(TraceSink):
    """Folds the event stream into per-window time-series (see module doc).

    Args:
        window_us: Window width in simulated microseconds.
        capacity: Closed windows kept per scheme (ring; evictions are
            counted in :attr:`windows_dropped`, never silent).
        num_blocks: Physical block count, when known - makes
            ``erase_variance`` exact (blocks never erased count as zero).
    """

    def __init__(
        self,
        window_us: float = DEFAULT_WINDOW_US,
        capacity: int = 720,
        num_blocks: Optional[int] = None,
    ):
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.window_us = window_us
        self.capacity = capacity
        self.num_blocks = num_blocks
        self._schemes: Dict[str, _SchemeSeries] = {}

    # ------------------------------------------------------------------
    # Sink interface
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        window, state = self._window_at(event.scheme, event.ts)
        self._accumulate(window, state, event)

    def channel_wait(self, scheme: str, ts: float, wait_us: float) -> None:
        """Fold one stripe-imbalance wait sample into its window.

        Called by the tracer's channel-wait fan-out (multi-channel
        devices only); not part of the :class:`TraceSink` event
        interface, so plain sinks never see these samples.
        """
        window, _ = self._window_at(scheme, ts)
        window.channel_wait_us += wait_us

    def _window_at(self, scheme: str, ts: float):
        """Resolve (window, state) for a timestamp, closing as needed."""
        state = self._schemes.get(scheme)
        if state is None:
            state = self._schemes[scheme] = _SchemeSeries(self.capacity)
        index = int(ts // self.window_us)
        window = state.current
        if window is None:
            window = state.current = Window(index)
        elif index > window.index:
            self._close_through(state, index)
            window = state.current
        return window, state

    def _close_through(self, state: _SchemeSeries, index: int) -> None:
        """Close the current window and any empty gap windows before
        ``index``; the ring counts what it evicts."""
        window = state.current
        assert window is not None
        ring = state.ring
        while window.index < index:
            if len(ring) == ring.maxlen:
                state.dropped += 1
            ring.append(window.as_dict(
                self.window_us, self._erase_variance(state)
            ))
            window = Window(window.index + 1)
        state.current = window

    def _accumulate(self, window: Window, state: _SchemeSeries,
                    event: TraceEvent) -> None:
        event_type = event.type
        if event_type in FLASH_OP_TYPES:
            cause = event.cause.value
            window.time_by_cause[cause] = (
                window.time_by_cause.get(cause, 0.0) + event.dur_us
            )
            if event_type is EventType.PAGE_READ:
                window.page_reads += 1
            elif event_type is EventType.PAGE_PROGRAM:
                window.page_programs += 1
                if cause in ("gc", "merge"):
                    window.gc_copy_pages += 1
            else:
                window.block_erases += 1
                pbn = event.ppn
                if pbn is not None:
                    state.erase_counts[pbn] = (
                        state.erase_counts.get(pbn, 0) + 1
                    )
        elif event_type is EventType.HOST_READ:
            window.host_reads += 1
        elif event_type is EventType.HOST_WRITE:
            window.host_writes += 1
        elif event_type is EventType.HOST_TRIM:
            window.host_trims += 1
        elif event_type is EventType.MAP_READ:
            window.map_reads += 1
        elif event_type is EventType.MAP_WRITE:
            window.map_writes += 1
        elif event_type is EventType.GC_START:
            window.gc_runs += 1
        elif event_type is EventType.CONVERT:
            window.converts += 1

    def _erase_variance(self, state: _SchemeSeries) -> float:
        counts = state.erase_counts
        if not counts:
            return 0.0
        population = self.num_blocks if self.num_blocks else len(counts)
        if population <= 0:
            return 0.0
        total = sum(counts.values())
        mean = total / population
        square_sum = sum(c * c for c in counts.values())
        # Blocks never erased contribute (0 - mean)^2 each.
        return (square_sum / population) - mean * mean

    # ------------------------------------------------------------------
    # Queries / export
    # ------------------------------------------------------------------
    def schemes(self) -> List[str]:
        return sorted(self._schemes)

    def windows_dropped(self, scheme: str) -> int:
        state = self._schemes.get(scheme)
        return state.dropped if state is not None else 0

    def windows(self, scheme: str) -> List[Dict[str, object]]:
        """All retained windows, oldest first, including the open one."""
        state = self._schemes.get(scheme)
        if state is None:
            return []
        out = list(state.ring)
        if state.current is not None:
            out.append(state.current.as_dict(
                self.window_us, self._erase_variance(state)
            ))
        return out

    def series(self, scheme: str, metric: str) -> List[float]:
        """One metric across the retained windows (None -> 0.0)."""
        values = []
        for window in self.windows(scheme):
            value = window.get(metric)
            values.append(float(value) if value is not None else 0.0)
        return values

    def snapshot(self, scheme: str) -> Dict[str, object]:
        return {
            "window_us": self.window_us,
            "capacity": self.capacity,
            "windows_dropped": self.windows_dropped(scheme),
            "windows": self.windows(scheme),
        }

    def to_jsonl(self, target: Union[str, TextIO],
                 scheme: Optional[str] = None) -> int:
        """Write retained windows as JSONL; returns lines written."""
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as stream:
                return self.to_jsonl(stream, scheme=scheme)
        schemes = [scheme] if scheme is not None else self.schemes()
        written = 0
        for name in schemes:
            for window in self.windows(name):
                record = {"scheme": name}
                record.update(window)
                target.write(json.dumps(record))
                target.write("\n")
                written += 1
        return written

    def to_prometheus(self, scheme: Optional[str] = None) -> str:
        """Prometheus-style text exposition of the latest window state."""
        lines = [
            "# HELP repro_ops_per_sec host page ops per second "
            "(latest window, simulated time)",
            "# TYPE repro_ops_per_sec gauge",
            "# HELP repro_waf write amplification (latest window)",
            "# TYPE repro_waf gauge",
            "# HELP repro_map_hit_rate UMT/CMT hit-rate estimate "
            "(latest window)",
            "# TYPE repro_map_hit_rate gauge",
            "# HELP repro_erase_count_variance per-block erase-count "
            "variance (cumulative)",
            "# TYPE repro_erase_count_variance gauge",
            "# HELP repro_host_ops_total host page ops (retained windows)",
            "# TYPE repro_host_ops_total counter",
            "# HELP repro_flash_time_us_total simulated flash time by "
            "cause (retained windows)",
            "# TYPE repro_flash_time_us_total counter",
            "# HELP repro_windows_dropped_total series ring evictions",
            "# TYPE repro_windows_dropped_total counter",
        ]
        schemes = [scheme] if scheme is not None else self.schemes()
        for name in schemes:
            windows = self.windows(name)
            if not windows:
                continue
            label = f'{{scheme="{name}"}}'
            latest = windows[-1]
            for metric, key in (
                ("repro_ops_per_sec", "ops_per_sec"),
                ("repro_waf", "waf"),
                ("repro_map_hit_rate", "map_hit_rate"),
                ("repro_erase_count_variance", "erase_variance"),
            ):
                value = latest.get(key)
                if value is not None:
                    lines.append(f"{metric}{label} {value:.6g}")
            lines.append(
                f"repro_host_ops_total{label} "
                f"{sum(w['host_ops'] for w in windows)}"
            )
            by_cause: Dict[str, float] = {}
            for window in windows:
                for cause, spent in self._cause_times(window).items():
                    by_cause[cause] = by_cause.get(cause, 0.0) + spent
            for cause, spent in sorted(by_cause.items()):
                lines.append(
                    f'repro_flash_time_us_total{{scheme="{name}",'
                    f'cause="{cause}"}} {spent:.6g}'
                )
            lines.append(
                f"repro_windows_dropped_total{label} "
                f"{self.windows_dropped(name)}"
            )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _cause_times(window: Dict[str, object]) -> Dict[str, float]:
        fractions = window["stall_fractions"]
        flash_us = float(window["flash_time_us"])
        return {
            cause: share * flash_us
            for cause, share in fractions.items()  # type: ignore[union-attr]
        }
