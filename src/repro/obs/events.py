"""Typed trace events and the cause taxonomy.

Every interesting action in the simulator - a host operation, a raw flash
operation, a GC run, a log-block merge, a LazyFTL conversion - is described
by one :class:`TraceEvent`.  Events carry the *simulated* timestamp at
which they begin, the scheme that produced them, and a **cause** tag naming
the activity on whose behalf the work happened (host / gc / merge / mapping
/ convert / recovery).  The cause tag is what turns a flat flash-operation
log into the "where did the time go" attribution the paper's
merge-overhead discussion implies.

The JSONL wire format is one ``TraceEvent.to_record()`` object per line;
``tools/check_trace_schema.py`` validates it and
:mod:`repro.analysis.attribution` consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

#: Version stamp of the JSONL record layout.
SCHEMA_VERSION = 1


class Cause(str, Enum):
    """Why a flash operation (or span) happened."""

    HOST = "host"          #: directly serving a host read/write
    GC = "gc"              #: garbage-collection relocation / erase
    MERGE = "merge"        #: log-block merge (BAST/FAST/LAST/NFTL)
    MAPPING = "mapping"    #: translation-page traffic on the host path
    CONVERT = "convert"    #: LazyFTL UBA/CBA block conversion (GMT commit)
    RECOVERY = "recovery"  #: crash-recovery scans and checkpointing


class EventType(str, Enum):
    """The event taxonomy (see docs/INTERNALS.md, "Observability")."""

    HOST_READ = "HostRead"        #: one page-granular host read, at completion
    HOST_WRITE = "HostWrite"      #: one page-granular host write, at completion
    HOST_TRIM = "HostTrim"        #: one page-granular host discard/trim
    GC_START = "GCStart"          #: a GC pass begins (victim chosen)
    GC_END = "GCEnd"              #: the GC pass finished (dur_us = span)
    MERGE_START = "MergeStart"    #: a log-block merge begins
    MERGE_END = "MergeEnd"        #: the merge finished (dur_us = span)
    CONVERT = "Convert"           #: a LazyFTL block conversion completed
    BATCH_COMMIT = "BatchCommit"  #: a batched GMT commit completed
    MAP_READ = "MapRead"          #: a translation page was read (lpn = tvpn)
    MAP_WRITE = "MapWrite"        #: a translation page was written (lpn = tvpn)
    PAGE_READ = "PageRead"        #: raw flash page read
    PAGE_PROGRAM = "PageProgram"  #: raw flash page program
    BLOCK_ERASE = "BlockErase"    #: raw flash block erase (ppn = pbn)


#: Event types that carry simulated device time in ``dur_us``.
FLASH_OP_TYPES = frozenset(
    (EventType.PAGE_READ, EventType.PAGE_PROGRAM, EventType.BLOCK_ERASE)
)

#: Host-operation completion events (one per logical page op).
HOST_OP_TYPES = frozenset(
    (EventType.HOST_READ, EventType.HOST_WRITE, EventType.HOST_TRIM)
)

#: Start/end pairs that must nest and balance per scheme.
SPAN_PAIRS = {
    EventType.GC_START: EventType.GC_END,
    EventType.MERGE_START: EventType.MERGE_END,
}


@dataclass
class TraceEvent:
    """One observation.

    Attributes:
        type: What happened (taxonomy above).
        ts: Simulated time (microseconds) at which it happened.  Flash ops
            are stamped when they *begin*; host ops and span ends when they
            complete.
        scheme: FTL scheme name that produced the event.
        cause: Activity the work is attributed to.
        lpn / ppn: Logical / physical page involved, when meaningful (for
            ``MapRead``/``MapWrite`` the ``lpn`` field holds the tvpn; for
            ``BlockErase`` the ``ppn`` field holds the block number).
        dur_us: Simulated duration - the op latency for flash ops, the
            span length for ``GCEnd``/``MergeEnd``/``Convert``.
        extra: Free-form per-type payload (merge kind, entries committed).
    """

    type: EventType
    ts: float
    scheme: str
    cause: Cause
    lpn: Optional[int] = None
    ppn: Optional[int] = None
    dur_us: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """Flat JSON-serialisable record (one JSONL line)."""
        record: Dict[str, Any] = {
            "type": self.type.value,
            "ts": round(self.ts, 3),
            "scheme": self.scheme,
            "cause": self.cause.value,
        }
        if self.lpn is not None:
            record["lpn"] = self.lpn
        if self.ppn is not None:
            record["ppn"] = self.ppn
        if self.dur_us:
            record["dur_us"] = round(self.dur_us, 3)
        if self.extra:
            record.update(self.extra)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_record` (extra keys land in ``extra``)."""
        known = {"type", "ts", "scheme", "cause", "lpn", "ppn", "dur_us"}
        return cls(
            type=EventType(record["type"]),
            ts=float(record["ts"]),
            scheme=record["scheme"],
            cause=Cause(record["cause"]),
            lpn=record.get("lpn"),
            ppn=record.get("ppn"),
            dur_us=float(record.get("dur_us", 0.0)),
            extra={k: v for k, v in record.items() if k not in known},
        )
