"""FTL-level operation accounting.

The flash chip counts raw operations; this layer attributes them to FTL
activities so the benchmarks can report the breakdowns the paper's
evaluation discusses: merge kinds, GC copies, and translation overhead.
"""

from __future__ import annotations

from typing import Dict


class FtlStats:
    """Counters maintained by every FTL implementation.

    A plain ``__slots__`` class (not a dataclass): every host operation
    touches at least one of these counters, so attribute access is on the
    per-op hot path.

    Attributes:
        host_reads / host_writes: page-granular host operations served.
        gc_runs: garbage-collection invocations (victim erased).
        gc_page_copies: valid data pages relocated by GC.
        gc_erases: blocks erased by GC (data + log + mapping).
        merges_full / merges_partial / merges_switch: log-block merge
            operations (BAST/FAST only; LazyFTL keeps these at zero by
            construction - the paper's headline claim).
        merge_page_copies: pages copied during merges.
        map_reads / map_writes: translation (GMT/translation-page) flash
            operations.
        converts: LazyFTL block conversions (UBA/CBA block -> DBA block).
        batched_commits: mapping entries committed to the GMT in batch.
        checkpoint_writes: checkpoint pages programmed.
        recovery_reads: pages read during crash recovery.
    """

    _FIELDS = (
        "host_reads",
        "host_writes",
        "gc_runs",
        "gc_page_copies",
        "gc_erases",
        "merges_full",
        "merges_partial",
        "merges_switch",
        "merge_page_copies",
        "map_reads",
        "map_writes",
        "converts",
        "batched_commits",
        "checkpoint_writes",
        "recovery_reads",
        "bad_blocks_retired",
    )

    __slots__ = _FIELDS

    def __init__(
        self,
        host_reads: int = 0,
        host_writes: int = 0,
        gc_runs: int = 0,
        gc_page_copies: int = 0,
        gc_erases: int = 0,
        merges_full: int = 0,
        merges_partial: int = 0,
        merges_switch: int = 0,
        merge_page_copies: int = 0,
        map_reads: int = 0,
        map_writes: int = 0,
        converts: int = 0,
        batched_commits: int = 0,
        checkpoint_writes: int = 0,
        recovery_reads: int = 0,
        bad_blocks_retired: int = 0,
    ):
        self.host_reads = host_reads
        self.host_writes = host_writes
        self.gc_runs = gc_runs
        self.gc_page_copies = gc_page_copies
        self.gc_erases = gc_erases
        self.merges_full = merges_full
        self.merges_partial = merges_partial
        self.merges_switch = merges_switch
        self.merge_page_copies = merge_page_copies
        self.map_reads = map_reads
        self.map_writes = map_writes
        self.converts = converts
        self.batched_commits = batched_commits
        self.checkpoint_writes = checkpoint_writes
        self.recovery_reads = recovery_reads
        self.bad_blocks_retired = bad_blocks_retired

    @property
    def merges_total(self) -> int:
        return self.merges_full + self.merges_partial + self.merges_switch

    def snapshot(self) -> "FtlStats":
        """Independent copy of the current counters."""
        return FtlStats(**{
            name: getattr(self, name) for name in self._FIELDS
        })

    def diff(self, earlier: "FtlStats") -> "FtlStats":
        """Counters accumulated since an ``earlier`` snapshot."""
        return FtlStats(**{
            name: getattr(self, name) - getattr(earlier, name)
            for name in self._FIELDS
        })

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary view for reports."""
        return {name: getattr(self, name) for name in self._FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FtlStats):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self._FIELDS
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._FIELDS
        )
        return f"FtlStats({inner})"
