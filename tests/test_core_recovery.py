"""Crash-recovery tests: checkpointing, OOB scans, and end-to-end power-loss
survival of acknowledged writes."""

import random

import pytest

from repro.core import LazyConfig, LazyFTL, recover
from repro.core.recovery import CheckpointError, CheckpointScribe
from repro.flash import (
    FlashGeometry,
    NandFlash,
    PowerLossError,
    UNIT_TIMING,
)

CONFIG = LazyConfig(uba_blocks=4, cba_blocks=2, gc_free_threshold=3)
LOGICAL = 96


def make_flash(blocks=40, pages=8, page_size=64):
    return NandFlash(
        FlashGeometry(num_blocks=blocks, pages_per_block=pages,
                      page_size=page_size),
        timing=UNIT_TIMING,
    )


def make_lazy(flash=None, **cfg):
    flash = flash if flash is not None else make_flash()
    defaults = {"uba_blocks": 4, "cba_blocks": 2, "gc_free_threshold": 3}
    defaults.update(cfg)
    return LazyFTL(flash, logical_pages=LOGICAL, config=LazyConfig(**defaults))


def run_until_power_loss(ftl, rng, expected, fail_after):
    """Apply random writes until the armed power fault trips.

    ``expected`` collects acknowledged writes.  Returns the in-flight
    ``(lpn, value)`` whose write raised: it was never acknowledged, so
    recovery may legitimately restore either the old value or this one
    (e.g. when the fault trips inside a piggy-backed checkpoint *after*
    the data page was programmed).
    """
    ftl.flash.fault.arm_after_programs(fail_after)
    inflight = None
    try:
        for i in range(10 ** 9):
            lpn = rng.randrange(LOGICAL)
            inflight = (lpn, (lpn, i))
            ftl.write(lpn, (lpn, i))
            expected[lpn] = (lpn, i)
    except PowerLossError:
        pass
    return inflight


def assert_recovered(recovered, expected, inflight=None):
    """Every acknowledged write must read back; the single unacknowledged
    in-flight write may read back as either the old or the new value."""
    for lpn, value in expected.items():
        got = recovered.read(lpn).data
        if got == value:
            continue
        if inflight is not None and inflight[0] == lpn \
                and got == inflight[1]:
            continue
        raise AssertionError(f"lpn {lpn}: read {got!r}, expected {value!r}")


class TestCheckpointScribe:
    def test_checkpoint_written_to_anchor(self):
        ftl = make_lazy()
        ftl.write(0, "x")
        ftl.checkpoint()
        assert ftl.stats.checkpoint_writes >= 1
        anchor = ftl.flash.block(0)
        assert anchor.write_ptr > 0

    def test_ping_pong_rotation_preserves_previous_checkpoint(self):
        ftl = make_lazy()
        for i in range(40):  # many checkpoints overflow one anchor
            ftl.write(i % LOGICAL, i)
            ftl.checkpoint()
        # Both anchors have been used; at least one complete checkpoint
        # must always be recoverable.
        ftl.flash.power_off()
        recovered, report = recover(ftl.flash, LOGICAL, CONFIG)
        assert report.checkpoint_found

    def test_oversized_checkpoint_rejected(self):
        flash = make_flash(blocks=40, pages=2, page_size=8)
        scribe = CheckpointScribe(
            flash, (0, 1), __import__("repro.flash", fromlist=["x"]).SequenceCounter(),
            __import__("repro.ftl.stats", fromlist=["x"]).FtlStats(),
        )
        huge = {
            "maps": {"gtd": [None] * 10000, "full_blocks": [], "frontier": None},
            "uba": [], "cba": [], "dba": [], "free": [], "seq": 0,
        }
        with pytest.raises(CheckpointError):
            scribe.write(huge)


class TestRecoveryBasics:
    def test_recover_without_any_checkpoint_falls_back_to_full_scan(self):
        ftl = make_lazy()
        for lpn in range(20):
            ftl.write(lpn, ("v", lpn))
        ftl.flash.power_off()
        recovered, report = recover(ftl.flash, LOGICAL, CONFIG)
        assert not report.checkpoint_found
        for lpn in range(20):
            assert recovered.read(lpn).data == ("v", lpn)

    def test_recover_with_checkpoint_and_no_later_writes(self):
        ftl = make_lazy()
        for lpn in range(20):
            ftl.write(lpn, ("v", lpn))
        ftl.checkpoint()
        ftl.flash.power_off()
        recovered, report = recover(ftl.flash, LOGICAL, CONFIG)
        assert report.checkpoint_found
        for lpn in range(20):
            assert recovered.read(lpn).data == ("v", lpn)

    def test_recover_finds_writes_after_checkpoint(self):
        ftl = make_lazy()
        for lpn in range(10):
            ftl.write(lpn, ("old", lpn))
        ftl.checkpoint()
        for lpn in range(10):
            ftl.write(lpn, ("new", lpn))
        ftl.flash.power_off()
        recovered, report = recover(ftl.flash, LOGICAL, CONFIG)
        for lpn in range(10):
            assert recovered.read(lpn).data == ("new", lpn)

    def test_recovered_umt_matches_live_umt(self):
        ftl = make_lazy()
        rng = random.Random(4)
        for i in range(500):
            ftl.write(rng.randrange(LOGICAL), i)
        ftl.checkpoint()
        for i in range(100):
            ftl.write(rng.randrange(LOGICAL), (i, "post"))
        live = ftl.umt.snapshot()
        ftl.flash.power_off()
        recovered, _ = recover(ftl.flash, LOGICAL, CONFIG)
        assert recovered.umt.snapshot() == live

    def test_recovery_scan_is_bounded_with_checkpoint(self):
        """With a checkpoint, recovery fully scans only UBA/CBA/MBA/free."""
        ftl = make_lazy()
        rng = random.Random(5)
        for i in range(1500):
            ftl.write(rng.randrange(LOGICAL), i)
        ftl.checkpoint()
        for i in range(50):
            ftl.write(rng.randrange(LOGICAL), (i, "post"))
        ftl.flash.power_off()
        _, with_ckpt = recover(ftl.flash, LOGICAL, CONFIG)
        assert with_ckpt.blocks_fully_scanned < ftl.flash.geometry.num_blocks
        assert with_ckpt.blocks_probed > 0


class TestPowerLossEndToEnd:
    @pytest.mark.parametrize("fail_after", [5, 37, 120, 400, 999])
    def test_all_acknowledged_writes_survive(self, fail_after):
        ftl = make_lazy(checkpoint_interval=100)
        rng = random.Random(fail_after)
        expected = {}
        for i in range(200):  # pre-populate
            lpn = rng.randrange(LOGICAL)
            ftl.write(lpn, (lpn, i))
            expected[lpn] = (lpn, i)
        inflight = run_until_power_loss(ftl, rng, expected, fail_after)
        recovered, report = recover(ftl.flash, LOGICAL, CONFIG)
        assert_recovered(recovered, expected, inflight)

    @pytest.mark.parametrize("seed", range(6))
    def test_crash_at_random_points_then_continue_writing(self, seed):
        """Recovery must leave a fully functional FTL, not just a readable
        one: keep writing (with GC churn) after the crash."""
        ftl = make_lazy(checkpoint_interval=64)
        rng = random.Random(seed)
        expected = {}
        for i in range(300):
            lpn = rng.randrange(LOGICAL)
            ftl.write(lpn, (lpn, i))
            expected[lpn] = (lpn, i)
        inflight = run_until_power_loss(ftl, rng, expected,
                                        fail_after=rng.randrange(30, 300))
        recovered, _ = recover(ftl.flash, LOGICAL, CONFIG)
        assert_recovered(recovered, expected, inflight)
        for i in range(1000):
            lpn = rng.randrange(LOGICAL)
            recovered.write(lpn, (lpn, "post", i))
            expected[lpn] = (lpn, "post", i)
        for lpn, value in expected.items():
            assert recovered.read(lpn).data == value

    def test_double_crash(self):
        """Crash, recover, crash again mid-recovery workload, recover."""
        ftl = make_lazy(checkpoint_interval=50)
        rng = random.Random(11)
        expected = {}
        for i in range(250):
            lpn = rng.randrange(LOGICAL)
            ftl.write(lpn, (lpn, i))
            expected[lpn] = (lpn, i)
        inflight = run_until_power_loss(ftl, rng, expected, fail_after=60)
        recovered, _ = recover(ftl.flash, LOGICAL, CONFIG)
        assert_recovered(recovered, expected, inflight)
        if inflight is not None:
            expected[inflight[0]] = recovered.read(inflight[0]).data
        recovered.checkpoint()
        inflight = run_until_power_loss(recovered, rng, expected,
                                        fail_after=45)
        final, _ = recover(recovered.flash, LOGICAL, CONFIG)
        assert_recovered(final, expected, inflight)

    def test_crash_during_heavy_gc_phase(self):
        ftl = make_lazy(checkpoint_interval=200)
        rng = random.Random(13)
        expected = {}
        # Fill the device so every new write rides on GC.
        for i in range(1200):
            lpn = rng.randrange(LOGICAL)
            ftl.write(lpn, (lpn, i))
            expected[lpn] = (lpn, i)
        inflight = run_until_power_loss(ftl, rng, expected, fail_after=77)
        recovered, _ = recover(ftl.flash, LOGICAL, CONFIG)
        assert_recovered(recovered, expected, inflight)

    def test_recovery_cost_reported(self):
        ftl = make_lazy()
        for lpn in range(30):
            ftl.write(lpn, lpn)
        ftl.checkpoint()
        ftl.flash.power_off()
        _, report = recover(ftl.flash, LOGICAL, CONFIG)
        assert report.pages_read > 0
        assert report.latency_us > 0
        assert report.umt_entries_rebuilt >= 0
