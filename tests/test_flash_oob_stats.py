"""Unit tests for OOB metadata, sequence counters and wear summaries."""

import pytest

from repro.flash import OOBData, PageKind, SequenceCounter, wear_summary
from repro.flash.timing import TimingModel


class TestOOBData:
    def test_fields(self):
        oob = OOBData(lpn=3, seq=10, kind=PageKind.MAPPING, cold=True)
        assert oob.lpn == 3
        assert oob.seq == 10
        assert oob.kind is PageKind.MAPPING
        assert oob.cold

    def test_defaults(self):
        oob = OOBData(lpn=0, seq=0)
        assert oob.kind is PageKind.DATA
        assert not oob.cold

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OOBData(lpn=-1, seq=0)
        with pytest.raises(ValueError):
            OOBData(lpn=0, seq=-1)

    def test_frozen(self):
        oob = OOBData(lpn=0, seq=0)
        with pytest.raises(AttributeError):
            oob.lpn = 5


class TestSequenceCounter:
    def test_monotonic(self):
        c = SequenceCounter()
        assert [c.next() for _ in range(3)] == [0, 1, 2]

    def test_current_peeks_without_consuming(self):
        c = SequenceCounter(start=5)
        assert c.current == 5
        assert c.next() == 5

    def test_fast_forward(self):
        c = SequenceCounter()
        c.next()
        c.fast_forward(100)
        assert c.next() == 101

    def test_fast_forward_never_rewinds(self):
        c = SequenceCounter(start=50)
        c.fast_forward(10)
        assert c.next() == 50

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SequenceCounter(start=-1)


class TestTimingModel:
    def test_copy_cost(self):
        t = TimingModel(page_read_us=25, page_program_us=200)
        assert t.copy_us == 225

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(page_read_us=-1)


class TestWearSummary:
    def test_empty(self):
        s = wear_summary([])
        assert s["total"] == 0
        assert s["cv"] == 0.0

    def test_all_zero(self):
        s = wear_summary([0, 0, 0])
        assert s["mean"] == 0.0
        assert s["cv"] == 0.0

    def test_uniform_wear_has_zero_cv(self):
        s = wear_summary([5, 5, 5, 5])
        assert s["cv"] == 0.0
        assert s["min"] == s["max"] == 5
        assert s["total"] == 20

    def test_skewed_wear_has_positive_cv(self):
        s = wear_summary([0, 0, 0, 100])
        assert s["cv"] > 1.0
        assert s["max"] == 100
