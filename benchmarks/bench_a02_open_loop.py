"""A2 (ablation) - open-loop replay: merge stalls as queueing delay.

The headline benchmarks replay closed-loop (response == service).  Real
trace timestamps make requests queue behind a busy device, so one FAST
full merge delays the requests after it.  This ablation offers the same
workload at a fixed arrival rate and reports the queueing-inflated
response times.
"""

from repro.flash import FlashGeometry, NandFlash
from repro.sim import Simulator, build_ftl
from repro.sim.report import format_series
from repro.traces import IORequest, Trace, uniform_random, warmup_fill

from conftest import emit

SCHEMES = ("FAST", "DFTL", "LazyFTL")
N = 15000
INTERARRIVAL_US = 450.0  # comfortably above the 200 us program time


def run_experiment():
    results = {}
    for scheme in SCHEMES:
        flash = NandFlash(FlashGeometry(num_blocks=512, pages_per_block=64,
                                        page_size=512))
        logical = int(flash.geometry.total_pages * 0.8)
        options = {"FAST": {"num_rw_log_blocks": 16},
                   "DFTL": {"cmt_entries": 2304}}.get(scheme, {})
        ftl = build_ftl(scheme, flash, logical, **options)
        footprint = int(logical * 0.8)
        closed = uniform_random(N, footprint, seed=0)
        trace = Trace(
            [IORequest(r.op, r.lpn, r.npages,
                       arrival_us=i * INTERARRIVAL_US)
             for i, r in enumerate(closed)],
            name="random-open-loop",
        )
        sim = Simulator(ftl)
        results[scheme] = sim.run(trace, warmup=warmup_fill(footprint))
    return results


def test_a02_open_loop(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    series = {
        "mean response (us)": [results[s].mean_response_us for s in SCHEMES],
        "p99 (us)": [results[s].responses.overall.percentile(99)
                     for s in SCHEMES],
        "max (us)": [results[s].responses.overall.max for s in SCHEMES],
    }
    text = format_series(
        "metric \\ scheme", list(SCHEMES), series,
        title=f"A2: open-loop replay at 1 request / {INTERARRIVAL_US:.0f} us "
              f"({N} random writes)",
    )
    emit("a02_open_loop", text)

    # Queueing amplifies FAST's stalls into the mean, not only the max.
    assert results["FAST"].mean_response_us > \
        results["LazyFTL"].mean_response_us * 2
    assert results["LazyFTL"].responses.overall.max < \
        results["FAST"].responses.overall.max
