"""E9 - Figure: response time versus RAM budget (DFTL CMT vs LazyFTL UMT).

Both demand-based schemes trade RAM for translation overhead: DFTL through
its CMT capacity, LazyFTL through the UBA size (which bounds the UMT).
This experiment sweeps matched RAM budgets over a write-heavy OLTP
workload, plus the analytic RAM table that shows why the ideal FTL does
not scale ("high scalability" claim).
"""

from repro.analysis import scalability_table
from repro.sim import HEADLINE_DEVICE, default_lazy_config, sweep
from repro.sim.report import format_series, format_table
from repro.traces import financial1

from conftest import N_REQUESTS, emit

#: RAM budgets expressed in mapping entries (8 bytes each).  For LazyFTL a
#: budget of N entries means a UBA of N/pages_per_block blocks (CBA fixed).
BUDGET_ENTRIES = (512, 1024, 2048, 4096)


def run_sweeps():
    footprint = int(HEADLINE_DEVICE.logical_pages * 0.8)
    trace = financial1(N_REQUESTS, footprint, seed=0)
    pages = HEADLINE_DEVICE.pages_per_block
    dftl = sweep(
        "DFTL",
        trace_of=lambda n: trace,
        parameter_values=BUDGET_ENTRIES,
        options_of=lambda n: {"cmt_entries": n},
        device_of=lambda n: HEADLINE_DEVICE,
        precondition="steady",
    )
    lazy = sweep(
        "LazyFTL",
        trace_of=lambda n: trace,
        parameter_values=BUDGET_ENTRIES,
        options_of=lambda n: {
            "config": default_lazy_config(
                uba_blocks=max(2, n // pages - 4), cba_blocks=4
            )
        },
        device_of=lambda n: HEADLINE_DEVICE,
        precondition="steady",
    )
    return dftl, lazy


def test_e09_ram_budget(benchmark):
    dftl, lazy = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    series = {
        "DFTL mean (us)": [r.mean_response_us for r in dftl],
        "LazyFTL mean (us)": [r.mean_response_us for r in lazy],
        "DFTL map reads": [float(r.ftl_stats.map_reads) for r in dftl],
        "LazyFTL map reads": [float(r.ftl_stats.map_reads) for r in lazy],
    }
    text = format_series(
        "scheme \\ RAM budget (entries)", list(BUDGET_ENTRIES), series,
        title=f"E9: RAM budget sweep, financial1 ({N_REQUESTS} requests)",
    )
    ram = scalability_table([64, 256, 1024, 4096, 32768])
    rows = [
        [f"{mib} MiB"] + [ram[mib][s] // 1024 for s in
                          ("ideal", "DFTL", "LazyFTL")]
        for mib in (64, 256, 1024, 4096, 32768)
    ]
    text += "\n\n" + format_table(
        ["device", "ideal KiB", "DFTL KiB", "LazyFTL KiB"],
        rows,
        title="analytic RAM footprint vs device capacity (scalability)",
    )
    emit("e09_ram_budget", text)

    # At every matched budget LazyFTL is at least competitive with DFTL.
    for d, l in zip(dftl, lazy):
        assert l.mean_response_us <= d.mean_response_us * 1.10
    # The ideal FTL's RAM grows ~linearly with capacity; LazyFTL's does not.
    ram_small, ram_big = scalability_table([64, 32768])[64], \
        scalability_table([64, 32768])[32768]
    assert ram_big["ideal"] / ram_small["ideal"] > 100
    assert ram_big["LazyFTL"] / ram_small["LazyFTL"] < 100
