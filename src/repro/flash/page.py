"""A single physical flash page and its lifecycle.

Pages move ``FREE -> VALID -> INVALID`` and only an erase of the whole block
returns them to ``FREE``.  Validity is an FTL-level notion (real NAND does
not know which pages are stale) but, as in FlashSim-style simulators, we keep
it on the page so garbage-collection policies and statistics can read it
directly.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Optional

from .oob import OOBData


class PageState(Enum):
    """Lifecycle state of one physical page."""

    FREE = "free"        #: erased, programmable
    VALID = "valid"      #: holds the live copy of some logical page
    INVALID = "invalid"  #: holds a stale copy awaiting garbage collection


class Page:
    """One physical page: state, optional data payload, and OOB metadata.

    The payload is an arbitrary Python object; simulations that only count
    operations pass ``None``, while correctness tests store version tokens
    and verify read-your-writes through the whole FTL stack.
    """

    __slots__ = ("state", "data", "oob")

    def __init__(self) -> None:
        self.state: PageState = PageState.FREE
        self.data: Any = None
        self.oob: Optional[OOBData] = None

    @property
    def is_free(self) -> bool:
        """True when the page is erased and can be programmed."""
        return self.state is PageState.FREE

    @property
    def is_valid(self) -> bool:
        """True when the page holds the live copy of a logical page."""
        return self.state is PageState.VALID

    @property
    def is_invalid(self) -> bool:
        """True when the page holds a stale copy."""
        return self.state is PageState.INVALID

    def program(self, data: Any, oob: Optional[OOBData]) -> None:
        """Store content; caller (the block) has checked NAND constraints."""
        self.state = PageState.VALID
        self.data = data
        self.oob = oob

    def invalidate(self) -> None:
        """Mark the stored copy stale (page becomes GC-reclaimable)."""
        self.state = PageState.INVALID

    def reset(self) -> None:
        """Return to the erased state (block erase path)."""
        self.state = PageState.FREE
        self.data = None
        self.oob = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lpn = self.oob.lpn if self.oob is not None else None
        return f"Page(state={self.state.value}, lpn={lpn})"
