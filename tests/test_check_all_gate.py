"""tools/check_all.py: stage aggregation, timing summary, --require-mypy.

The gate script is subprocess-driven and stdlib-only, so these tests load
it by path and drive ``main()`` with stubbed stage runners - no real
pytest/perfbench subprocesses are spawned.
"""

import importlib.util
import pathlib
import sys

import pytest

_TOOL = (pathlib.Path(__file__).resolve().parent.parent
         / "tools" / "check_all.py")


@pytest.fixture()
def check_all(monkeypatch):
    spec = importlib.util.spec_from_file_location("check_all_under_test",
                                                  _TOOL)
    module = importlib.util.module_from_spec(spec)
    monkeypatch.setitem(sys.modules, "check_all_under_test", module)
    spec.loader.exec_module(module)
    return module


class TestFormatSummary:
    def test_totals_and_alignment(self, check_all):
        lines = check_all.format_summary([
            ("ftlint", "OK", 1.25),
            ("flowlint", "FAILED", 2.5),
            ("pytest", "SKIPPED", 0.0),
        ])
        assert lines[0] == "check_all stage summary:"
        assert "ftlint" in lines[1] and "OK" in lines[1]
        assert "flowlint" in lines[2] and "FAILED" in lines[2]
        assert lines[-1].strip().startswith("total")
        assert "3.75s" in lines[-1]

    def test_empty(self, check_all):
        lines = check_all.format_summary([])
        assert lines[0] == "check_all stage summary:"
        assert "0.00s" in lines[-1]


class TestAggregation:
    def _stub_stages(self, check_all, monkeypatch, outcomes):
        monkeypatch.setattr(check_all, "STEPS", tuple(outcomes))
        monkeypatch.setattr(check_all, "RUNNERS", {
            name: (lambda ok: lambda config: ok)(ok)
            for name, ok in outcomes.items()
        })

    def test_all_ok_exits_zero(self, check_all, monkeypatch, capsys):
        self._stub_stages(check_all, monkeypatch,
                          {"a": True, "b": True})
        assert check_all.main([]) == 0
        out = capsys.readouterr().out
        assert "check_all: all gates passed" in out
        assert "check_all stage summary:" in out

    def test_single_failure_exits_nonzero(self, check_all, monkeypatch,
                                          capsys):
        self._stub_stages(check_all, monkeypatch,
                          {"a": True, "b": False, "c": True})
        assert check_all.main([]) == 1
        out = capsys.readouterr().out
        assert "check_all: FAILED (b)" in out

    def test_every_failure_is_listed(self, check_all, monkeypatch,
                                     capsys):
        self._stub_stages(check_all, monkeypatch,
                          {"a": False, "b": True, "c": False})
        assert check_all.main([]) == 1
        assert "check_all: FAILED (a, c)" in capsys.readouterr().out

    def test_skip_excludes_stage_from_failures(self, check_all,
                                               monkeypatch, capsys):
        self._stub_stages(check_all, monkeypatch,
                          {"a": False, "b": True})
        assert check_all.main(["--skip", "a"]) == 0
        out = capsys.readouterr().out
        assert "a: SKIPPED (--skip)" in out
        assert "all gates passed" in out

    def test_summary_reflects_stage_status(self, check_all, monkeypatch,
                                           capsys):
        self._stub_stages(check_all, monkeypatch,
                          {"a": True, "b": False})
        check_all.main(["--skip", "a"])
        summary = capsys.readouterr().out.split(
            "check_all stage summary:")[1]
        assert "SKIPPED" in summary
        assert "FAILED" in summary


class TestRequireMypy:
    def test_missing_mypy_fails_when_required(self, check_all,
                                              monkeypatch):
        monkeypatch.setattr(importlib.util, "find_spec",
                            lambda name: None)
        assert check_all.step_mypy({"_require_mypy": True}) is False

    def test_missing_mypy_skips_when_not_required(self, check_all,
                                                  monkeypatch):
        monkeypatch.setattr(importlib.util, "find_spec",
                            lambda name: None)
        assert check_all.step_mypy({"_require_mypy": False}) is True


class TestFlowlintStage:
    def test_flow_rule_ids_match_engine(self, check_all):
        from repro.checks.lint import FLOW_RULE_IDS
        assert set(check_all.FLOW_RULE_IDS) == set(FLOW_RULE_IDS)

    def test_flowlint_stage_registered(self, check_all):
        assert "flowlint" in check_all.STEPS
        assert "flowlint" in check_all.RUNNERS
