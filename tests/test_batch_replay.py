"""Differential tests for the epoch-segmented batch-replay engine.

The engine (:mod:`repro.perf.batch`) promises statistics *bit-identical*
to the scalar replay loop.  These tests attack that promise from every
side:

* Hypothesis generates arbitrary mixed workloads (single- and
  multi-page requests, closed-loop and timestamped arrivals) and
  asserts digest equality scalar vs batched, per scheme, on both
  kernel backends;
* the eligibility gate is probed directly: sanitized flash subclasses,
  attached tracers, armed fault injectors, powered-off devices and
  fractional timing models must all decline batching (and therefore
  replay scalar even under ``replay_mode="batched"``);
* the bulk-update primitives the executors lean on (``add_many``,
  ``record_many``, ``set_many``, ``touch_many``) are checked one by
  one against their per-element twins, including validation behaviour.

``tests/test_golden_stats.py`` pins the same contract against the
committed snapshot; here the workloads are adversarial instead of
golden, so planner edge cases (frontier exhaustion mid-epoch,
checkpoint budgets, unmapped reads, CMT misses) get fuzzed.
"""

import os
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import batch
from repro.perf.maptable import MapTable
from repro.sim.factory import default_lazy_config, standard_setup
from repro.sim.golden import engine_digest
from repro.sim.metrics import LatencyDistribution, ResponseStats
from repro.sim.runner import DeviceSpec, run_scheme
from repro.sim.simulator import Simulator
from repro.traces import IORequest, OpType, Trace

#: Tiny device: frontiers roll over and GC fires within dozens of
#: writes, so even short generated workloads cross epoch boundaries.
DEVICE = DeviceSpec(
    num_blocks=64, pages_per_block=8, page_size=512, logical_fraction=0.6
)

HAVE_NUMPY = batch._numpy is not None

#: Scheme x option cells the differential fuzz covers: the three
#: planner-registered schemes, plus LazyFTL's stateful ablation knobs
#: (the translation-page cache mutates on read; periodic checkpoints
#: bound write epochs).
CELLS = [
    ("ideal", {}),
    ("DFTL", {}),
    ("LazyFTL", {}),
    ("LazyFTL", {"config": default_lazy_config(map_cache_pages=4)}),
    ("LazyFTL", {"config": default_lazy_config(checkpoint_interval=40)}),
]


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    batch.set_backend("auto")


def make_trace(drawn, arrival_step):
    """Build a trace from drawn (op, lpn, npages) triples.

    ``arrival_step > 0`` stamps monotone arrivals (open-loop replay with
    idle gaps); NaN-free zero step means closed loop.
    """
    logical = DEVICE.logical_pages
    requests = []
    now = 0.0
    for is_write, lpn, npages in drawn:
        npages = min(npages, logical - lpn)
        if npages <= 0:
            continue
        requests.append(IORequest(
            op=OpType.WRITE if is_write else OpType.READ,
            lpn=lpn, npages=npages,
            arrival_us=now if arrival_step else None,
        ))
        now += arrival_step
    return Trace(requests, name="fuzz")


request_lists = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=DEVICE.logical_pages - 1),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=10,
    max_size=120,
)


class TestDifferentialFuzz:
    @settings(deadline=None, max_examples=15)
    @given(drawn=request_lists,
           arrival_step=st.sampled_from([0.0, 25.0]),
           cell=st.sampled_from(range(len(CELLS))))
    def test_batched_replay_is_bit_identical(
        self, drawn, arrival_step, cell
    ):
        scheme, options = CELLS[cell]
        trace = make_trace(drawn, arrival_step)
        reference = engine_digest(run_scheme(
            scheme, trace, device=DEVICE, precondition="steady",
            replay_mode="scalar", **options,
        ))
        backends = ["fallback", "numpy"] if HAVE_NUMPY else ["fallback"]
        for backend in backends:
            batch.set_backend(backend)
            candidate = engine_digest(run_scheme(
                scheme, trace, device=DEVICE, precondition="steady",
                replay_mode="batched", **options,
            ))
            assert candidate == reference, (
                f"{scheme} {options} diverged on the {backend} kernels"
            )

    @settings(deadline=None, max_examples=10)
    @given(drawn=request_lists)
    def test_warm_up_leaves_identical_state(self, drawn):
        """warm_up dispatches through the same kernels; the post-warm-up
        *measured* run must not care which mode warmed the device."""
        trace = make_trace(drawn, 0.0)
        probe = make_trace(
            [(False, lpn, 1) for lpn in range(0, DEVICE.logical_pages, 7)],
            0.0,
        )
        digests = {}
        for mode in ("scalar", "batched"):
            _, ftl, _ = standard_setup(
                "LazyFTL",
                num_blocks=DEVICE.num_blocks,
                pages_per_block=DEVICE.pages_per_block,
                page_size=DEVICE.page_size,
                logical_fraction=DEVICE.logical_fraction,
            )
            simulator = Simulator(ftl, replay_mode=mode)
            simulator.warm_up(trace)
            digests[mode] = engine_digest(simulator.run(probe))
        assert digests["batched"] == digests["scalar"]


class TestEligibilityGate:
    def _ftl(self, scheme="LazyFTL", **kwargs):
        _, ftl, _ = standard_setup(
            scheme, num_blocks=64, pages_per_block=8, page_size=512,
            logical_fraction=0.6, **kwargs,
        )
        return ftl

    def test_registered_schemes_get_an_engine(self):
        for scheme in ("ideal", "DFTL", "LazyFTL"):
            assert batch.engine_for(self._ftl(scheme)) is not None

    def test_unregistered_schemes_decline(self):
        for scheme in ("BAST", "FAST", "LAST", "NFTL", "superblock"):
            assert batch.engine_for(self._ftl(scheme)) is None

    def test_sanitized_flash_declines(self):
        wrapped = self._ftl(sanitize=True)
        # The wrapper itself is not a registered scheme, and the inner
        # scheme's flash is a validating subclass: both must decline.
        assert batch.engine_for(wrapped) is None
        assert batch.engine_for(wrapped._ftl) is None

    def test_attached_tracer_declines(self):
        from repro.obs import Tracer

        ftl = self._ftl()
        ftl.attach_tracer(Tracer())
        assert batch.engine_for(ftl) is None

    def test_armed_fault_injector_declines(self):
        ftl = self._ftl()
        ftl.flash.fault.arm_after_programs(10)
        assert batch.engine_for(ftl) is None

    def test_powered_off_device_declines(self):
        ftl = self._ftl()
        ftl.flash.power_off()
        assert batch.engine_for(ftl) is None

    def test_fractional_timing_declines(self):
        from repro.flash.timing import TimingModel

        fractional = TimingModel(
            page_read_us=25.5, page_program_us=200.0, block_erase_us=1500.0
        )
        ftl = self._ftl(timing=fractional)
        assert batch.engine_for(ftl) is None

    def test_background_gc_rejects_timestamped_traces(self):
        ftl = self._ftl(config=default_lazy_config(background_gc=True))
        engine = batch.engine_for(ftl)
        assert engine is not None
        closed = make_trace([(True, 0, 1)] * 12, 0.0).to_columnar()
        open_loop = make_trace([(True, 0, 1)] * 12, 50.0).to_columnar()
        assert engine.supports(closed)
        assert not engine.supports(open_loop)


class TestReplayModeSelection:
    def test_invalid_mode_raises(self):
        _, ftl, _ = standard_setup("ideal", num_blocks=64,
                                   pages_per_block=8, page_size=512)
        with pytest.raises(ValueError, match="replay_mode"):
            Simulator(ftl, replay_mode="vectorised")

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_MODE", "scalar")
        _, ftl, _ = standard_setup("ideal", num_blocks=64,
                                   pages_per_block=8, page_size=512)
        assert Simulator(ftl).replay_mode == "scalar"
        monkeypatch.delenv("REPRO_REPLAY_MODE")
        assert Simulator(ftl).replay_mode == "auto"

    def test_fallback_env_forces_fallback_backend(self):
        assert batch.backend_name() in ("numpy", "fallback")
        batch.set_backend("fallback")
        assert batch.backend_name() == "fallback"
        batch.set_backend("auto")
        expected = "fallback" if (
            batch._numpy is None or os.environ.get(batch.FALLBACK_ENV)
        ) else "numpy"
        assert batch.backend_name() == expected

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="backend"):
            batch.set_backend("simd")

    @pytest.mark.skipif(HAVE_NUMPY, reason="numpy is installed")
    def test_numpy_backend_without_numpy_raises(self):
        with pytest.raises(RuntimeError, match="numpy"):
            batch.set_backend("numpy")


class TestBulkPrimitives:
    def test_add_many_matches_sequential_add(self):
        values = [3.0, 0.0, 17.5, 2.0 ** 53 - 1, 0.25, 1e-9]
        one = LatencyDistribution()
        for value in values:
            one.add(value)
        bulk = LatencyDistribution()
        bulk.add_many(array("d", values))
        assert bulk.summary() == one.summary()

    def test_add_many_validates_before_mutating(self):
        dist = LatencyDistribution()
        dist.add(5.0)
        with pytest.raises(ValueError):
            dist.add_many([1.0, float("nan")])
        with pytest.raises(ValueError):
            dist.add_many([1.0, -2.0])
        assert dist.count == 1  # the failed batches left no residue

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
    def test_add_many_numpy_path_matches(self):
        np = batch._numpy
        values = np.asarray([1.0, 2.5, 0.0, 9.75])
        one = LatencyDistribution()
        for value in values:
            one.add(float(value))
        bulk = LatencyDistribution()
        bulk.add_many(values)
        assert bulk.summary() == one.summary()

    def test_record_many_routes_per_op(self):
        ops = bytes([1, 0, 0, 1, 0])
        responses = array("d", [10.0, 20.0, 30.0, 40.0, 50.0])
        one = ResponseStats()
        for op, resp in zip(ops, responses):
            one.record(bool(op), resp)
        bulk = ResponseStats()
        bulk.record_many(memoryview(ops), responses)
        assert bulk.summary() == one.summary()

    def test_set_many_matches_setitem(self):
        one = MapTable(16)
        bulk = MapTable(16)
        pairs = [(3, 30), (1, 10), (3, 31)]
        for index, value in pairs:
            one[index] = value
        bulk.set_many(pairs)
        assert bulk.snapshot() == one.snapshot()
        with pytest.raises(ValueError):
            bulk.set_many([(0, -1)])

    def test_umt_set_many_matches_set(self):
        from repro.core.umt import UpdateMappingTable

        one = UpdateMappingTable(entries_per_page=8)
        bulk = UpdateMappingTable(entries_per_page=8)
        pairs = [(5, 50), (21, 210), (5, 51)]
        for lpn, ppn in pairs:
            one.set(lpn, ppn)
        bulk.set_many(pairs)
        assert bulk.snapshot() == one.snapshot()
        assert len(bulk) == len(one)
