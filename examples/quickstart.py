"""Quickstart: build a flash device, run LazyFTL on it, look at the costs.

Run:  python examples/quickstart.py
"""

from repro import FlashGeometry, LazyConfig, LazyFTL, NandFlash


def main() -> None:
    # A small device: 128 blocks x 64 pages x 2 KiB = 16 MiB of raw flash.
    flash = NandFlash(FlashGeometry(num_blocks=128, pages_per_block=64,
                                    page_size=2048))
    # Export 80 % of it as logical space; the rest is overprovisioning.
    ftl = LazyFTL(
        flash,
        logical_pages=int(flash.geometry.total_pages * 0.8),
        config=LazyConfig(uba_blocks=8, cba_blocks=4),
    )

    # --- basic I/O --------------------------------------------------------
    result = ftl.write(4242, b"hello flash")
    print(f"write lpn 4242 took {result.latency_us:.0f} us")
    result = ftl.read(4242)
    print(f"read  lpn 4242 -> {result.data!r} in {result.latency_us:.0f} us "
          "(UMT hit: no mapping page read needed)")

    # --- the lazy part ----------------------------------------------------
    # A burst of writes costs one page program each; no mapping I/O yet.
    before = ftl.stats.map_writes
    for lpn in range(1000):
        ftl.write(lpn, lpn)
    print(f"\n1000 writes issued {ftl.stats.map_writes - before} mapping-page"
          f" writes so far (deferred in the UMT: {len(ftl.umt)} entries)")

    # Conversion commits the deferred mappings in batch.
    ftl.flush()
    print(f"after flush: {ftl.stats.map_writes} mapping writes committed "
          f"{ftl.stats.batched_commits} entries "
          f"({ftl.stats.batched_commits / max(1, ftl.stats.map_writes):.1f} "
          "entries per mapping-page write)")

    # --- what the paper eliminates ---------------------------------------
    print(f"\nmerge operations performed: {ftl.stats.merges_total} "
          "(LazyFTL has none, by construction)")
    print(f"RAM used by translation structures: {ftl.ram_bytes() / 1024:.1f}"
          f" KiB for {ftl.logical_pages * 2 / 1024:.0f} MiB of logical space")

    # --- crash safety -----------------------------------------------------
    ftl.checkpoint()
    flash.power_off()
    from repro import recover

    recovered, report = recover(flash, ftl.logical_pages, ftl.config)
    print(f"\nrecovered after power loss: read lpn 4242 -> "
          f"{recovered.read(4242).data!r} "
          f"(scanned {report.blocks_fully_scanned} blocks, "
          f"{report.pages_read} page reads)")


if __name__ == "__main__":
    main()
