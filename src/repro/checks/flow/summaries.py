"""Intra-module call-graph summaries of FTL protocol events.

The flow rules reason about five *protocol events* - the steps of the
page lifecycle LazyFTL's correctness argument rests on::

    allocate -> program -> map-update -> invalidate-old -> erase

Events are recognised syntactically from call names (``program_page``,
``invalidate_page``, ``erase_block``, ``pool.allocate()``, map-table
writes such as ``self._umt.set``/``gtd.set``), *through local aliases*:
the hot paths pre-bind methods (``program_page = flash.program_page``)
and the classifier resolves those single-assignment aliases before
matching, so the optimised loops are analysed just like the plain ones.

A :class:`ModuleSummaries` instance additionally propagates events
through the module's own call graph to a fixpoint: a function that calls
``self._collect_data_block(...)`` inherits that helper's INVALIDATE and
PROGRAM events, and *passing* a local function as an argument (LazyFTL's
``commit(groups, self._deferred_invalidate)`` callback) credits the
callee's events to the call site.  That keeps the rules honest across
the small helpers the schemes are factored into without whole-program
analysis.
"""

from __future__ import annotations

import ast
import enum
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class ProtocolEvent(enum.Flag):
    """One step of the page-lifecycle protocol (bit-flag set)."""

    NONE = 0
    ALLOCATE = enum.auto()     #: block/page taken from a pool or frontier
    PROGRAM = enum.auto()      #: raw NAND page program
    INVALIDATE = enum.auto()   #: old physical page invalidated
    ERASE = enum.auto()        #: raw NAND block erase
    MAP_WRITE = enum.auto()    #: mapping table (UMT/GTD/CMT/...) updated
    MAP_READ = enum.auto()     #: old mapping looked up


#: Attribute-name fragments that mark a mapping-table receiver; aligned
#: with FTL007's hints plus the scheme-local table names.
MAP_RECEIVER_HINTS = ("map", "gtd", "cmt", "umt", "l2p", "p2l")

#: Method names that write a mapping entry when called on a map-ish
#: receiver.  ``restore`` is deliberately absent: checkpoint/recovery
#: restores *rebuild* a table from scanned state, they do not update a
#: live mapping with an old page to retire.
_MAP_WRITE_METHODS = frozenset({
    "set", "insert", "put", "store", "update", "commit",
})

#: Method names that read the *current* (old) mapping of a key.
_MAP_READ_METHODS = frozenset({"ppn_at", "lookup", "get", "points_to"})

#: Call names that take a fresh block/page from a pool or frontier.
_ALLOC_NAMES = frozenset({"allocate", "alloc", "alloc_block", "take"})


def call_name_chain(func: ast.expr) -> Tuple[str, ...]:
    """Dotted name chain of a call target: ``self._umt.set`` ->
    ``("self", "_umt", "set")``; non-name links truncate the chain at
    the left (``blocks[i].erase`` -> ``("erase",)``)."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return tuple(parts)


def local_aliases(func: FunctionNode) -> Dict[str, Tuple[str, ...]]:
    """Single-assignment local names bound to attribute chains.

    ``flash = self.flash`` then ``program_page = flash.program_page``
    resolves ``program_page`` to ``("self", "flash", "program_page")``.
    Names assigned more than once (or from non-chain expressions) are
    not aliases.
    """
    assign_counts: Dict[str, int] = {}
    candidates: Dict[str, Tuple[str, ...]] = {}
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            continue  # nested defs keep their own namespace
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            assign_counts[name] = assign_counts.get(name, 0) + 1
            chain = call_name_chain(node.value)
            if chain:
                candidates[name] = chain
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)) \
                and isinstance(getattr(node, "target", None), ast.Name):
            name = node.target.id
            assign_counts[name] = assign_counts.get(name, 0) + 1
        if isinstance(node, (ast.For, ast.AsyncFor)):
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    assign_counts[t.id] = assign_counts.get(t.id, 0) + 1
    aliases = {
        name: chain for name, chain in candidates.items()
        if assign_counts.get(name, 0) == 1
    }
    # Resolve alias-of-alias chains (flash -> self.flash) to a fixpoint;
    # depth is tiny in practice.
    for _ in range(4):
        changed = False
        for name, chain in list(aliases.items()):
            head = chain[0]
            if head in aliases and head != name:
                aliases[name] = aliases[head] + chain[1:]
                changed = True
        if not changed:
            break
    return aliases


def resolve_chain(
    func_expr: ast.expr, aliases: Dict[str, Tuple[str, ...]]
) -> Tuple[str, ...]:
    chain = call_name_chain(func_expr)
    if chain and chain[0] in aliases:
        chain = aliases[chain[0]] + chain[1:]
    return chain


def _is_map_receiver(chain: Tuple[str, ...]) -> bool:
    """A ``self``-rooted receiver with a map-ish component.

    Mapping *state* lives on the FTL instance (``self._umt``, ``gtd``
    pre-bound from ``self.gtd``); local staging dicts used by recovery
    scans or batch assembly are scratch space, not protocol state, so a
    non-``self`` root never counts (aliases are resolved before this
    test, which is what lets pre-bound ``gtd_set = self.gtd.set`` match).
    """
    if not chain or chain[0] != "self":
        return False
    receiver = chain[:-1]
    for part in receiver:
        lowered = part.lower()
        if any(hint in lowered for hint in MAP_RECEIVER_HINTS):
            return True
    return False


def classify_call(
    call: ast.Call, aliases: Dict[str, Tuple[str, ...]]
) -> ProtocolEvent:
    """Protocol events performed directly by one call expression."""
    chain = resolve_chain(call.func, aliases)
    if not chain:
        return ProtocolEvent.NONE
    last = chain[-1]
    lowered = last.lower()
    events = ProtocolEvent.NONE
    if "program" in lowered or lowered == "write_page":
        events |= ProtocolEvent.PROGRAM
    if "invalidate" in lowered:
        events |= ProtocolEvent.INVALIDATE
    if "erase" in lowered and "count" not in lowered:
        # erase_block/erase/_erase; but not erase_counts() and friends,
        # which read wear statistics without touching the device.
        events |= ProtocolEvent.ERASE
    if lowered in _ALLOC_NAMES:
        events |= ProtocolEvent.ALLOCATE
    if lowered in _MAP_WRITE_METHODS and _is_map_receiver(chain):
        events |= ProtocolEvent.MAP_WRITE
    if lowered in _MAP_READ_METHODS and _is_map_receiver(chain):
        events |= ProtocolEvent.MAP_READ
    return events


def is_map_subscript_store(node: ast.AST,
                           aliases: Dict[str, Tuple[str, ...]]) -> bool:
    """``self._cmt[key] = value`` - a mapping write via subscript on a
    map-ish attribute (local staging dicts do not count)."""
    if not (isinstance(node, (ast.Assign, ast.AugAssign))):
        return False
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        if isinstance(target, ast.Subscript):
            chain = resolve_chain(target.value, aliases)
            if len(chain) >= 2 and _is_map_receiver(chain + ("",)):
                return True
    return False


class FunctionSummary:
    """Events one function performs, directly or through local calls."""

    __slots__ = ("name", "node", "direct", "events", "calls",
                 "func_refs")

    def __init__(self, name: str, node: FunctionNode):
        self.name = name
        self.node = node
        self.direct = ProtocolEvent.NONE
        self.events = ProtocolEvent.NONE
        #: Names of module-local functions/methods this function calls.
        self.calls: Set[str] = set()
        #: Local functions referenced without being called (callbacks).
        self.func_refs: Set[str] = set()


class ModuleSummaries:
    """Per-function protocol-event summaries for one module AST."""

    def __init__(self, tree: ast.AST):
        self.functions: Dict[str, FunctionSummary] = {}
        self._collect(tree)
        self._propagate()

    # -- construction --------------------------------------------------
    def _collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            summary = FunctionSummary(node.name, node)
            aliases = local_aliases(node)
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    summary.direct |= classify_call(sub, aliases)
                    chain = resolve_chain(sub.func, aliases)
                    if chain:
                        summary.calls.add(chain[-1])
                    for arg in list(sub.args) + [
                            kw.value for kw in sub.keywords]:
                        ref = call_name_chain(arg)
                        if ref:
                            summary.func_refs.add(ref[-1])
                elif is_map_subscript_store(sub, aliases):
                    summary.direct |= ProtocolEvent.MAP_WRITE
            summary.events = summary.direct
            # Last definition of a name wins, matching runtime rebinding;
            # module-level name collisions are rare enough to accept.
            self.functions[node.name] = summary

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for summary in self.functions.values():
                inherited = summary.events
                for callee in summary.calls | summary.func_refs:
                    target = self.functions.get(callee)
                    if target is not None and target is not summary:
                        inherited |= target.events
                if inherited != summary.events:
                    summary.events = inherited
                    changed = True

    # -- queries -------------------------------------------------------
    def events_of(self, name: str) -> ProtocolEvent:
        summary = self.functions.get(name)
        return summary.events if summary else ProtocolEvent.NONE

    def call_events(
        self, call: ast.Call, aliases: Dict[str, Tuple[str, ...]]
    ) -> ProtocolEvent:
        """Direct events of a call plus the summarised events of the
        module-local callee and of any local function passed as an
        argument (callback credit)."""
        events = classify_call(call, aliases)
        chain = resolve_chain(call.func, aliases)
        if chain:
            events |= self.events_of(chain[-1])
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            ref = call_name_chain(arg)
            if ref:
                events |= self.events_of(ref[-1])
        return events


#: Call names considered exception-safe for the torn-state rule: pure
#: bookkeeping that cannot plausibly raise mid-protocol.
SAFE_CALLS = frozenset({
    "append", "add", "discard", "remove", "clear", "len", "min", "max",
    "sorted", "sum", "abs", "bool", "int", "float", "range", "print",
    "emit", "span_start", "span_end", "push_cause", "pop_cause",
    "is_suppressed", "isinstance", "id", "repr", "str", "format",
})


def _header_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """Expressions a *stored* statement evaluates itself (the CFG keeps
    compound statements as header markers; their bodies are separate
    blocks and must not be scanned through the marker)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def stmt_may_raise(stmt: ast.stmt) -> bool:
    """Conservative may-raise test for one stored statement: explicit
    ``raise`` or any call whose target is not a known-safe name."""
    for root in _header_exprs(stmt):
        for node in ast.walk(root):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                chain = call_name_chain(node.func)
                if not chain or chain[-1] not in SAFE_CALLS:
                    return True
    return False
