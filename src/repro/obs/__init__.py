"""Observability: structured event tracing and metrics for the simulator.

The subsystem has five layers:

* **events** - the typed taxonomy (:class:`EventType`, :class:`Cause`,
  :class:`TraceEvent`) and its JSONL record format;
* **tracer** - the :class:`Tracer` threaded through the flash chip, the
  FTL schemes and the simulator; zero overhead when detached;
* **sinks / metrics** - JSONL and ring-buffer sinks, the streaming
  per-cause :class:`AttributionSink`, and counters/histograms in a
  :class:`MetricsRegistry`;
* **latency / series** - the per-op cause decomposition
  (:class:`OpLatencyRecorder` over a :class:`MultiResHistogram`) and the
  windowed time-series :class:`SeriesCollector`;
* **report** - one :func:`collect_report` snapshot per run, rendered by
  :func:`render_report` or consumed as JSON (``repro report``).

Quick start::

    from repro.obs import JsonlSink, Tracer
    from repro.sim import HEADLINE_DEVICE, compare_schemes

    tracer = Tracer([JsonlSink("run.jsonl")])
    results = compare_schemes(trace, device=HEADLINE_DEVICE, tracer=tracer)
    tracer.close()
    print(tracer.attribution.as_dict())

or, from the command line::

    python -m repro compare --trace random --trace-out run.jsonl --metrics
    python -m repro inspect-trace run.jsonl
"""

from .events import (
    FLASH_OP_TYPES,
    HOST_OP_TYPES,
    SCHEMA_VERSION,
    SPAN_PAIRS,
    Cause,
    EventType,
    TraceEvent,
)
from .latency import BUCKETS, MultiResHistogram, OpLatencyRecorder, bucket_of
from .metrics import Counter, MetricsRegistry, StreamingHistogram
from .report import (
    SNAPSHOT_SCHEMA,
    build_snapshot,
    collect_report,
    load_snapshot,
    render_report,
    save_snapshot,
    sparkline,
    validate_snapshot,
)
from .series import SERIES_SCHEMA_VERSION, SeriesCollector
from .sinks import AttributionSink, JsonlSink, RingBufferSink, TraceSink
from .tracer import Tracer

__all__ = [
    "FLASH_OP_TYPES",
    "HOST_OP_TYPES",
    "SCHEMA_VERSION",
    "SPAN_PAIRS",
    "Cause",
    "EventType",
    "TraceEvent",
    "BUCKETS",
    "MultiResHistogram",
    "OpLatencyRecorder",
    "bucket_of",
    "Counter",
    "MetricsRegistry",
    "StreamingHistogram",
    "SNAPSHOT_SCHEMA",
    "build_snapshot",
    "collect_report",
    "load_snapshot",
    "render_report",
    "save_snapshot",
    "sparkline",
    "validate_snapshot",
    "SERIES_SCHEMA_VERSION",
    "SeriesCollector",
    "AttributionSink",
    "JsonlSink",
    "RingBufferSink",
    "TraceSink",
    "Tracer",
]
