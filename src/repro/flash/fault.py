"""Power-loss fault injection for crash-recovery experiments.

LazyFTL's recovery design is exercised by cutting power at arbitrary points
in a workload and verifying that the FTL rebuilds a consistent mapping from
flash-resident state (mapping blocks, checkpoints, OOB scans).  The
:class:`PowerFault` controller decides *when* the device dies; the chip
consults it before every state-changing operation.

Faults trip *between* operations: programs and erases are atomic at our
modelling granularity, which matches the page-program atomicity assumption
of the paper's basic recovery design.
"""

from __future__ import annotations

from typing import Optional


class PowerFault:
    """Schedules a power loss after a given number of operations.

    The countdown can be armed against program operations only (the usual
    choice: crashes matter when they interleave with writes) or against all
    state-changing operations (programs + erases).
    """

    def __init__(self) -> None:
        self._remaining: Optional[int] = None
        self._count_erases = False
        self.tripped = False

    def arm_after_programs(self, n: int) -> None:
        """Trip the fault just before the ``n+1``-th program from now."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._remaining = n
        self._count_erases = False
        self.tripped = False

    def arm_after_ops(self, n: int) -> None:
        """Like :meth:`arm_after_programs` but erases count down too."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._remaining = n
        self._count_erases = True
        self.tripped = False

    def disarm(self) -> None:
        """Cancel any pending fault."""
        self._remaining = None
        self.tripped = False

    @property
    def armed(self) -> bool:
        return self._remaining is not None and not self.tripped

    def on_program(self) -> bool:
        """Account one program; return True if the device must die now."""
        return self._tick()

    def on_erase(self) -> bool:
        """Account one erase; return True if the device must die now."""
        if not self._count_erases:
            return False
        return self._tick()

    def _tick(self) -> bool:
        if self._remaining is None or self.tripped:
            return False
        if self._remaining == 0:
            self.tripped = True
            self._remaining = None
            return True
        self._remaining -= 1
        return False
