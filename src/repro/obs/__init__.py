"""Observability: structured event tracing and metrics for the simulator.

The subsystem has three layers:

* **events** - the typed taxonomy (:class:`EventType`, :class:`Cause`,
  :class:`TraceEvent`) and its JSONL record format;
* **tracer** - the :class:`Tracer` threaded through the flash chip, the
  FTL schemes and the simulator; zero overhead when detached;
* **sinks / metrics** - JSONL and ring-buffer sinks, the streaming
  per-cause :class:`AttributionSink`, and counters/histograms in a
  :class:`MetricsRegistry`.

Quick start::

    from repro.obs import JsonlSink, Tracer
    from repro.sim import HEADLINE_DEVICE, compare_schemes

    tracer = Tracer([JsonlSink("run.jsonl")])
    results = compare_schemes(trace, device=HEADLINE_DEVICE, tracer=tracer)
    tracer.close()
    print(tracer.attribution.as_dict())

or, from the command line::

    python -m repro compare --trace random --trace-out run.jsonl --metrics
    python -m repro inspect-trace run.jsonl
"""

from .events import (
    FLASH_OP_TYPES,
    SCHEMA_VERSION,
    SPAN_PAIRS,
    Cause,
    EventType,
    TraceEvent,
)
from .metrics import Counter, MetricsRegistry, StreamingHistogram
from .sinks import AttributionSink, JsonlSink, RingBufferSink, TraceSink
from .tracer import Tracer

__all__ = [
    "FLASH_OP_TYPES",
    "SCHEMA_VERSION",
    "SPAN_PAIRS",
    "Cause",
    "EventType",
    "TraceEvent",
    "Counter",
    "MetricsRegistry",
    "StreamingHistogram",
    "AttributionSink",
    "JsonlSink",
    "RingBufferSink",
    "TraceSink",
    "Tracer",
]
