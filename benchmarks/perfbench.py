#!/usr/bin/env python3
"""perfbench - wall-clock throughput harness with regression gating.

Measures *simulator* speed (host page-operations replayed per second of
wall-clock, warm-up included) for a fixed suite of cells:

* **micro** - the pure page-mapped scheme ("ideal") replaying uniform
  random single-page writes: pure mapping-table + flash-array overhead,
  no merge logic, so it isolates the engine's per-op cost.
* **macro** - LazyFTL and DFTL replaying the synthetic Financial1-like
  OLTP trace with steady-state preconditioning: the headline workload,
  dominated by GC/translation traffic like the E3/E4 experiments.
* **batch** - read-heavy/high-locality hot-cold workloads on the ideal
  and LazyFTL schemes: long no-slow-event stretches, so these cells
  expose the epoch-segmented batch-replay kernels
  (:mod:`repro.perf.batch`) that the GC-bound macros largely hide.
* **trace-pipeline** - the workload-ingest path by stage: ``parse-cold``
  (text tokenisation, cache disabled), ``parse-cached`` (binary-cache
  hit for the same file), and ``replay`` (the bare columnar replay loop
  on a pre-built device, no setup or warm-up in the timed region).
  These cells report *requests*/sec for the parse pair and page-ops/sec
  for replay; the recorded ``trace_pipeline.cached_vs_cold`` ratio is
  the headline cache win.

Each cell runs ``--repeat`` times (default 3) and keeps the *best*
throughput, which is the standard way to suppress scheduler noise on a
shared box.

Results land in ``BENCH_pr9.json`` at the repo root:

* ``--record before|after`` stores this run under that section (keyed by
  suite: ``full`` or ``smoke``) and refreshes the ``speedup`` block when
  both sections exist;
* ``--check`` compares this run against the committed ``gate`` section
  (typical-conditions medians from ``--calibrate-gate``; falls back to
  the ``after`` speedup record when absent) and exits 1 when any cell
  regresses more than ``[tool.perfbench] max_regression_pct``
  (pyproject.toml, default 15).  Baselines are first scaled by the
  current machine-regime factor (see :func:`_canary_score`), clamped
  to <= 1.0, so a box-wide slow regime does not read as an engine
  regression while a fast regime never loosens the gate; cells that
  still fail are re-measured in up to two fresh retry rounds (failing
  cells only, new canary bracket each round) so a sub-second cell that
  landed in one slow burst is not a verdict - only a cell slow in
  every round is;
  ``trace:*`` cells use the wider ``max_regression_pct_trace`` (default
  40) because their timed region is filesystem-bound and swings far more
  run-to-run than the compute cells; ``batch:*`` cells use
  ``max_regression_pct_batch`` (default 20) because their short epochs
  make them the noisiest compute cells;
* ``--replay-mode auto|scalar|batched`` forces the replay path for the
  whole suite (paired before/after measurements of the batch engine);
* ``--profile N`` additionally runs each engine cell once under cProfile
  and stores the top-N cumulative-time functions in the BENCH file;
* ``--smoke`` shrinks the workload so the whole suite runs in a couple
  of seconds - this is what the ``tools/check_all.py`` gate executes.

Run:  PYTHONPATH=src python benchmarks/perfbench.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time
from dataclasses import replace

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.sim.runner import DeviceSpec, run_scheme  # noqa: E402
from repro.traces import cache as trace_cache  # noqa: E402
from repro.traces.financial import financial1  # noqa: E402
from repro.traces.io import load_trace, save_trace  # noqa: E402
from repro.traces.model import merge_traces  # noqa: E402
from repro.traces.synthetic import (  # noqa: E402
    hot_cold, uniform_random, warmup_fill,
)

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11
    tomllib = None

BENCH_PATH = _REPO_ROOT / "BENCH_pr9.json"
DEFAULT_MAX_REGRESSION_PCT = 15.0
DEFAULT_TRACE_MAX_REGRESSION_PCT = 40.0
DEFAULT_BATCH_MAX_REGRESSION_PCT = 20.0


def regression_thresholds() -> tuple:
    """(general, trace:*, batch:*) thresholds from ``[tool.perfbench]``.

    The trace-pipeline cells time open()/read()/stat() against a real
    filesystem, so their run-to-run spread dwarfs the compute cells';
    they get their own (wider) budget instead of loosening the gate on
    the engine cells.  The batch cells replay long vectorized epochs, so
    a few rescheduled epoch boundaries swing them more than the scalar
    cells - they also get a slightly wider budget.
    """
    pyproject = _REPO_ROOT / "pyproject.toml"
    section = {}
    if tomllib is not None and pyproject.is_file():
        with open(pyproject, "rb") as stream:
            data = tomllib.load(stream)
        section = data.get("tool", {}).get("perfbench", {})
    return (
        float(section.get("max_regression_pct",
                          DEFAULT_MAX_REGRESSION_PCT)),
        float(section.get("max_regression_pct_trace",
                          DEFAULT_TRACE_MAX_REGRESSION_PCT)),
        float(section.get("max_regression_pct_batch",
                          DEFAULT_BATCH_MAX_REGRESSION_PCT)),
    )


def _steady_warmup(footprint: int):
    """The exact warm-up ``run_scheme(precondition="steady")`` builds.

    Built explicitly here so its page operations count toward the
    measured throughput (the warm-up replays through the same engine).
    """
    warmup = warmup_fill(footprint)
    overwrites = uniform_random(
        int(footprint * 0.7), footprint, write_ratio=1.0, seed=987,
        name="steady-warmup",
    )
    return merge_traces([warmup, overwrites], name="warmup")


def build_cells(smoke: bool):
    """The fixed measurement cells: (key, scheme, trace, warmup, device).

    ``macro:LazyFTL:4ch`` replays the macro workload on a 4-channel
    device: wall-clock throughput is *lower* there (the overlap
    bookkeeping costs host cycles), so the cell exists to track that
    overhead, while the *simulated* speedup the channels buy is
    certified separately by :func:`run_parallel_probe`.
    """
    if smoke:
        device = DeviceSpec(
            num_blocks=96, pages_per_block=16, page_size=512,
            logical_fraction=0.7,
        )
        n_micro, n_macro = 4000, 2500
    else:
        device = DeviceSpec(
            num_blocks=128, pages_per_block=32, page_size=512,
            logical_fraction=0.8,
        )
        n_micro, n_macro = 40000, 25000
    footprint = device.logical_pages
    micro_trace = uniform_random(
        n_micro, footprint, write_ratio=1.0, seed=101, name="uniform-writes",
    )
    macro_trace = financial1(n_macro, footprint, seed=202)
    # Read-heavy + high-locality: few writes, so GC and conversions are
    # rare and the no-slow-event epochs the batch engine vectorizes run
    # long.  These are the cells the batch kernels were built for.
    batch_trace = hot_cold(
        n_micro, footprint, write_ratio=0.1, hot_fraction=0.2,
        hot_probability=0.9, seed=303, name="hot-reads",
    )
    fill = warmup_fill(footprint)
    steady = _steady_warmup(footprint)
    device_4ch = replace(device, channels=4)
    return [
        ("micro:ideal", "ideal", micro_trace, fill, device),
        ("macro:LazyFTL", "LazyFTL", macro_trace, steady, device),
        ("macro:DFTL", "DFTL", macro_trace, steady, device),
        ("macro:LazyFTL:4ch", "LazyFTL", macro_trace, steady, device_4ch),
        ("batch:readheavy", "ideal", batch_trace, fill, device),
        ("batch:LazyFTL", "LazyFTL", batch_trace, fill, device),
    ]


def _profile_cell(run, top_n: int) -> list:
    """One cProfile'd run of a cell -> top-N cumulative-time entries."""
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    entries = []
    # getstats() rows: inlinetime is self time, totaltime is cumulative.
    rows = sorted(
        profiler.getstats(),
        key=lambda row: row.totaltime, reverse=True,
    )
    for row in rows:
        if len(entries) >= top_n:
            break
        code = row.code
        if isinstance(code, str):
            func = code
        else:
            func = (f"{pathlib.Path(code.co_filename).name}:"
                    f"{code.co_firstlineno}:{code.co_name}")
        entries.append({
            "func": func,
            "ncalls": row.callcount,
            "tottime": round(row.inlinetime, 4),
            "cumtime": round(row.totaltime, 4),
        })
    return entries


def run_suite(smoke: bool, repeats: int, replay_mode: str = None,
              profile_top: int = 0, only: set = None) -> tuple:
    """Run every cell; returns ``(cells, profiles)``.

    ``cells`` maps ``key -> {"ops_per_sec", ...}``; ``profiles`` maps
    ``key -> top-N cProfile entries`` (empty without ``--profile``).
    ``only`` restricts the run to the named cells (the gate's retry
    rounds re-measure just the cells that failed).
    """
    results = {}
    profiles = {}
    for key, scheme, trace, warmup, device in build_cells(smoke):
        if only is not None and key not in only:
            continue
        total_ops = warmup.page_ops + trace.page_ops
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            run_scheme(scheme, trace, device=device, warmup=warmup,
                       replay_mode=replay_mode)
            elapsed = time.perf_counter() - start
            best = max(best, total_ops / elapsed)
        results[key] = {
            "ops_per_sec": round(best, 1),
            "page_ops": total_ops,
            "repeats": repeats,
        }
        print(f"{key:16s} {best:10.0f} ops/s  ({total_ops} page ops, "
              f"best of {repeats})")
        if profile_top > 0:
            profiles[key] = _profile_cell(
                lambda: run_scheme(scheme, trace, device=device,
                                   warmup=warmup, replay_mode=replay_mode),
                profile_top,
            )
    if only is None or any(key.startswith("trace:") for key in only):
        trace_cells = run_trace_pipeline(smoke, repeats, replay_mode)
        if only is not None:
            trace_cells = {k: v for k, v in trace_cells.items()
                           if k in only}
        results.update(trace_cells)
    return results, profiles


def run_trace_pipeline(smoke: bool, repeats: int,
                       replay_mode: str = None) -> dict:
    """The trace-pipeline micros: parse-cold, parse-cached, replay-only.

    Uses the largest trace the suite touches (the macro Financial1-like
    workload) serialised to the text format, so the parse pair measures
    the exact file a user would replay.  The process cache configuration
    is restored afterwards regardless of outcome.
    """
    from repro.sim.factory import standard_setup
    from repro.sim.simulator import Simulator

    _, _, macro_trace, _, device = build_cells(smoke)[-1]
    n_requests = len(macro_trace)
    results = {}
    with tempfile.TemporaryDirectory(prefix="perfbench_trace_") as tmp:
        tmp_path = pathlib.Path(tmp)
        trace_file = str(tmp_path / "macro.trace")
        save_trace(macro_trace, trace_file)
        try:
            # parse-cold: text tokenisation only, cache off.
            trace_cache.configure(enabled=False)
            best = 0.0
            for _ in range(repeats):
                start = time.perf_counter()
                load_trace(trace_file)
                best = max(best,
                           n_requests / (time.perf_counter() - start))
            results["trace:parse-cold"] = {
                "ops_per_sec": round(best, 1),
                "page_ops": n_requests,
                "repeats": repeats,
            }
            # parse-cached: binary-cache hit for the same file.
            trace_cache.configure(tmp_path / "cache")
            load_trace(trace_file)  # prime
            best = 0.0
            for _ in range(repeats):
                start = time.perf_counter()
                load_trace(trace_file)
                best = max(best,
                           n_requests / (time.perf_counter() - start))
            results["trace:parse-cached"] = {
                "ops_per_sec": round(best, 1),
                "page_ops": n_requests,
                "repeats": repeats,
            }
        finally:
            trace_cache.configure()  # back to the environment default
    # replay-only: the bare columnar replay loop on the ideal scheme -
    # device construction and warm-up stay outside the timed region.
    page_ops = macro_trace.page_ops
    best = 0.0
    for _ in range(repeats):
        _, ftl, _ = standard_setup(
            "ideal",
            num_blocks=device.num_blocks,
            pages_per_block=device.pages_per_block,
            page_size=device.page_size,
            logical_fraction=device.logical_fraction,
            timing=device.timing,
        )
        simulator = Simulator(ftl, replay_mode=replay_mode)
        simulator.warm_up(warmup_fill(device.logical_pages))
        start = time.perf_counter()
        simulator.run(macro_trace, reset_counters=False)
        best = max(best, page_ops / (time.perf_counter() - start))
    results["trace:replay"] = {
        "ops_per_sec": round(best, 1),
        "page_ops": page_ops,
        "repeats": repeats,
    }
    for key in ("trace:parse-cold", "trace:parse-cached", "trace:replay"):
        cell = results[key]
        unit = "req/s" if "parse" in key else "ops/s"
        print(f"{key:18s} {cell['ops_per_sec']:12.0f} {unit}  "
              f"(best of {repeats})")
    return results


#: Minimum fraction of service latency the decomposition must attribute
#: to a named cause bucket (the rest is the explicit ``unattributed``).
MIN_ATTRIBUTED_FRACTION = 0.99


def run_latency_probe(smoke: bool) -> dict:
    """Traced LazyFTL macro run -> compact latency-decomposition summary.

    Deliberately *not* one of the timed cells: the throughput cells run
    detached (no tracer) so the regression gate keeps certifying the
    zero-overhead-when-detached contract, while this probe certifies the
    observability contract - per-op cause decomposition sums to the op
    latency and >= :data:`MIN_ATTRIBUTED_FRACTION` of service time is
    attributed to a named cause.  The summary is embedded in the BENCH
    file under ``latency`` so the perf trajectory carries tail data.
    """
    from repro.obs import OpLatencyRecorder, Tracer

    key, scheme, trace, warmup, device = build_cells(smoke)[1]
    assert key == "macro:LazyFTL"
    recorder = OpLatencyRecorder()
    run_scheme(scheme, trace, device=device, warmup=warmup,
               tracer=Tracer(latency=recorder))
    summary = recorder.scheme_summary(scheme)
    classes = {}
    for op_class, entry in summary["classes"].items():
        classes[op_class] = {
            "count": entry["count"],
            "p50_us": round(entry["p50_us"], 3),
            "p99_us": round(entry["p99_us"], 3),
            "p999_us": round(entry["p999_us"], 3),
            "attributed_fraction": round(
                entry["attributed_fraction"], 6
            ),
        }
    probe = {
        "scheme": scheme,
        "classes": classes,
        "invariant": summary["invariant"],
    }
    overall = classes["overall"]
    print(f"latency probe ({scheme}): p99 {overall['p99_us']:.0f} us, "
          f"p999 {overall['p999_us']:.0f} us, "
          f"{overall['attributed_fraction'] * 100:.2f}% attributed, "
          f"{probe['invariant']['violations']} invariant violation(s)")
    return probe


def check_latency_probe(probe: dict) -> int:
    """Fail (exit 1) on decomposition drift or weak attribution."""
    failed = False
    if probe["invariant"]["violations"]:
        print(f"latency probe: {probe['invariant']['violations']} "
              "decomposition invariant violation(s) - ops observed more "
              "flash time than they were charged")
        failed = True
    for op_class, entry in sorted(probe["classes"].items()):
        if entry["attributed_fraction"] < MIN_ATTRIBUTED_FRACTION:
            print(f"latency probe: {op_class} attribution "
                  f"{entry['attributed_fraction'] * 100:.2f}% < "
                  f"{MIN_ATTRIBUTED_FRACTION * 100:.0f}% floor")
            failed = True
    return 1 if failed else 0


#: Minimum *simulated* throughput gain the 4-channel macro cell must
#: show over the serial cell (device-busy microseconds, not wall-clock).
MIN_PARALLEL_SPEEDUP = 1.5


def run_parallel_probe(smoke: bool) -> dict:
    """Certify what the 4-channel device model actually buys.

    Replays the macro workload twice - serial and 4-channel - and
    compares ``device_busy_us`` (the sum of per-op service makespans,
    which *is* simulated time under the closed-loop model).  The
    4-channel run is traced so the probe simultaneously certifies that
    overlap timing keeps the latency decomposition exact: channel waits
    are reported separately and never leak into unattributed time.
    Both runs are deterministic, so the speedup is noise-free.
    """
    from repro.obs import OpLatencyRecorder, Tracer

    cells = {key: (scheme, trace, warmup, device)
             for key, scheme, trace, warmup, device in build_cells(smoke)}
    scheme, trace, warmup, serial_device = cells["macro:LazyFTL"]
    _, _, _, par_device = cells["macro:LazyFTL:4ch"]
    serial = run_scheme(scheme, trace, device=serial_device, warmup=warmup)
    recorder = OpLatencyRecorder()
    parallel = run_scheme(scheme, trace, device=par_device, warmup=warmup,
                          tracer=Tracer(latency=recorder))
    speedup = serial.device_busy_us / parallel.device_busy_us
    summary = recorder.scheme_summary(scheme)
    overall = summary["classes"]["overall"]
    probe = {
        "scheme": scheme,
        "channels": par_device.channels,
        "busy_us_serial": round(serial.device_busy_us, 1),
        "busy_us_parallel": round(parallel.device_busy_us, 1),
        "simulated_speedup": round(speedup, 3),
        "attributed_fraction": round(overall["attributed_fraction"], 6),
        "violations": summary["invariant"]["violations"],
        "channel_wait": summary["channel_wait"],
    }
    print(f"parallel probe ({scheme}, {par_device.channels}ch): "
          f"simulated speedup {speedup:.3f}x, "
          f"{overall['attributed_fraction'] * 100:.2f}% attributed, "
          f"{probe['violations']} invariant violation(s)")
    return probe


def check_parallel_probe(probe: dict) -> int:
    """Fail (exit 1) when channels stop paying or the decomposition
    drifts under overlap timing."""
    failed = False
    if probe["simulated_speedup"] < MIN_PARALLEL_SPEEDUP:
        print(f"parallel probe: simulated speedup "
              f"{probe['simulated_speedup']:.3f}x < "
              f"{MIN_PARALLEL_SPEEDUP}x floor")
        failed = True
    if probe["attributed_fraction"] < MIN_ATTRIBUTED_FRACTION:
        print(f"parallel probe: attribution "
              f"{probe['attributed_fraction'] * 100:.2f}% < "
              f"{MIN_ATTRIBUTED_FRACTION * 100:.0f}% floor")
        failed = True
    if probe["violations"]:
        print(f"parallel probe: {probe['violations']} decomposition "
              "invariant violation(s) under overlap timing")
        failed = True
    return 1 if failed else 0


class _CanaryObj:
    __slots__ = ("a", "b", "c")


def _canary_score(repeats: int = 5) -> float:
    """Machine-speed canary: iterations/s of a fixed pure-Python loop.

    The shared box drifts between sustained speed regimes that move
    *every* cell by 30-40% over minutes - far past the regression
    thresholds.  This loop measures only the current regime: it touches
    no simulator code, so its ratio against the recorded score
    separates "the machine is slow right now" from "the engine got
    slower".  The workload is deliberately *allocation-heavy* (slotted
    objects, tuples, a growing-and-dropped list): the regimes hit
    allocator- and cache-bound code far harder than they hit a tight
    register loop, and the cells are allocator-bound - a cache-resident
    integer loop was measured to stay near full speed in regimes where
    every cell lost 40%.  Best-of is kept for the same reason the cells
    keep it.
    """
    iters = 30_000
    best = 0.0
    for _ in range(repeats):
        sink = []
        start = time.perf_counter()
        for i in range(iters):
            obj = _CanaryObj()
            obj.a = i
            obj.b = i & 7
            obj.c = (i, i & 3)
            sink.append(obj)
            if len(sink) >= 2048:
                sink = []
        elapsed = time.perf_counter() - start
        if elapsed > 0.0:
            best = max(best, iters / elapsed)
    return best


def _macro_aggregate(cells: dict) -> float:
    """Total macro throughput: sum(ops) / sum(best-run seconds)."""
    ops = sec = 0.0
    for key, cell in cells.items():
        if key.startswith("macro:"):
            ops += cell["page_ops"]
            sec += cell["page_ops"] / cell["ops_per_sec"]
    return ops / sec if sec else 0.0


def _load_bench() -> dict:
    if BENCH_PATH.is_file():
        with open(BENCH_PATH, encoding="utf-8") as stream:
            return json.load(stream)
    return {"schema": 1}


def record(section: str, suite: str, cells: dict,
           probe: dict = None, profiles: dict = None,
           canary: float = None, parallel: dict = None) -> None:
    data = _load_bench()
    data.setdefault(section, {})[suite] = cells
    if section == "after":
        score = canary if canary is not None else _canary_score()
        data.setdefault("canary", {})[suite] = round(score)
    if probe is not None:
        data.setdefault("latency", {})[suite] = probe
    if parallel is not None:
        data.setdefault("parallel", {})[suite] = parallel
    if profiles:
        data.setdefault("profile", {})[suite] = profiles
    before = data.get("before", {}).get(suite)
    after = data.get("after", {}).get(suite)
    if before and after:
        speedup = {
            key: round(
                after[key]["ops_per_sec"] / before[key]["ops_per_sec"], 3
            )
            for key in sorted(before)
            if key in after
        }
        speedup["macro"] = round(
            _macro_aggregate(after) / _macro_aggregate(before), 3
        )
        data.setdefault("speedup", {})[suite] = speedup
    cold = cells.get("trace:parse-cold")
    cached = cells.get("trace:parse-cached")
    if cold and cached:
        data.setdefault("trace_pipeline", {})[suite] = {
            "cached_vs_cold": round(
                cached["ops_per_sec"] / cold["ops_per_sec"], 2
            ),
        }
    with open(BENCH_PATH, "w", encoding="utf-8") as stream:
        json.dump(data, stream, indent=1, sort_keys=True)
        stream.write("\n")
    print(f"recorded {suite} suite under '{section}' in {BENCH_PATH.name}")


def calibrate_gate(smoke: bool, rounds: int, repeats: int,
                   replay_mode: str = None) -> None:
    """Record the regression gate's typical-conditions baselines.

    The ``before``/``after`` sections exist to report *speedups*, so
    they keep best-of-fast-regime numbers from the paired recording -
    on this box those sit ~1.6x above what an ordinary check run
    measures, which no common-mode canary correction can bridge.  The
    gate therefore compares against its own ``gate`` section: the
    per-cell *median* across several rounds interleaved with canary
    samples, i.e. what a typical run of this suite actually achieves,
    with the median canary capturing the regime it was measured in.
    """
    import statistics

    suite = "smoke" if smoke else "full"
    per_cell = {}
    canaries = []
    for round_no in range(rounds):
        canaries.append(_canary_score())
        cells, _ = run_suite(smoke, repeats, replay_mode)
        for key, cell in cells.items():
            per_cell.setdefault(key, []).append(cell["ops_per_sec"])
        print(f"calibration round {round_no + 1}/{rounds} done")
        time.sleep(2.0)
    data = _load_bench()
    data.setdefault("gate", {})[suite] = {
        "canary": round(statistics.median(canaries)),
        "cells": {key: round(statistics.median(values), 1)
                  for key, values in sorted(per_cell.items())},
        "rounds": rounds,
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as stream:
        json.dump(data, stream, indent=1, sort_keys=True)
        stream.write("\n")
    print(f"gate baselines calibrated ({rounds} round(s), {suite} suite) "
          f"in {BENCH_PATH.name}")


def check(suite: str, cells: dict, canary_now: float = None) -> int:
    """Fail (exit 1) when any cell regresses past the threshold.

    Baselines are first scaled by the *regime factor*: the current
    :func:`_canary_score` over the one recorded with the baseline,
    clamped to at most 1.0.  On a slow machine regime every baseline
    shrinks proportionally (a uniform 35% system slowdown stops reading
    as 35% of "regression"); on a fast regime the clamp keeps the gate
    at full strength - the factor only ever forgives the machine, never
    the engine.  ``canary_now`` lets the caller supply a score sampled
    while the cells were actually running (see :func:`main`, which
    brackets the suite and passes the minimum - throttling after a
    sustained load like the pytest stage decays within seconds, so a
    canary taken only *after* the cells understates the regime they
    ran in).
    """
    failing = check_cells(suite, cells, canary_now)
    return 1 if failing else 0


def check_cells(suite: str, cells: dict, canary_now: float = None) -> list:
    """One gate pass: print per-cell verdicts, return the failing keys.

    A non-empty return is not final - :func:`main` re-measures just the
    failing cells in fresh retry rounds (new canary bracket each time),
    because on this box a single best-of-3 of a sub-second cell can
    land entirely inside a slow burst that the common-mode canary
    scaling cannot see.  Only a cell that fails every round is a
    regression.
    """
    data = _load_bench()
    gate = data.get("gate", {}).get(suite)
    if gate:
        baseline = {key: {"ops_per_sec": ops}
                    for key, ops in gate["cells"].items()}
        recorded_canary = gate.get("canary")
    else:
        baseline = data.get("after", {}).get(suite)
        recorded_canary = data.get("canary", {}).get(suite)
    if not baseline:
        print(f"perfbench: no committed '{suite}' baseline in "
              f"{BENCH_PATH.name}; record one with --record after "
              "or --calibrate-gate")
        return sorted(cells)
    scale = 1.0
    if recorded_canary:
        now = canary_now if canary_now is not None else _canary_score()
        scale = min(1.0, now / recorded_canary)
        print(f"regime scale {scale:.2f} (canary {now:.0f}/s vs "
              f"{recorded_canary:.0f}/s recorded)")
    general_pct, trace_pct, batch_pct = regression_thresholds()
    failing = []
    for key, cell in sorted(cells.items()):
        base = baseline.get(key)
        if base is None:
            print(f"{key}: NEW (no baseline)")
            continue
        if key.startswith("trace:"):
            threshold = trace_pct
        elif key.startswith("batch:"):
            threshold = batch_pct
        else:
            threshold = general_pct
        base_ops = base["ops_per_sec"] * scale
        delta_pct = 100.0 * (cell["ops_per_sec"] / base_ops - 1.0)
        verdict = "ok"
        if delta_pct < -threshold:
            verdict = f"REGRESSION (>{threshold:.0f}% slower)"
            failing.append(key)
        print(f"{key:16s} {cell['ops_per_sec']:10.0f} ops/s vs baseline "
              f"{base_ops:10.0f} ({delta_pct:+.1f}%) {verdict}")
    return failing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfbench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload (the check_all gate)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per cell; the best is kept (default 3)")
    parser.add_argument("--record", choices=("before", "after"),
                        help="store this run in BENCH_pr9.json")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed 'after' "
                             "baseline; exit 1 on regression")
    parser.add_argument("--replay-mode", choices=("auto", "scalar",
                                                  "batched"), default=None,
                        help="force the replay path for every cell "
                             "(default: the simulator's own default)")
    parser.add_argument("--profile", type=int, default=0, metavar="N",
                        help="also run each engine cell once under "
                             "cProfile; store the top-N cumulative "
                             "functions in the BENCH file on --record")
    parser.add_argument("--calibrate-gate", type=int, default=0,
                        metavar="ROUNDS",
                        help="record typical-conditions gate baselines: "
                             "the per-cell median over ROUNDS suite "
                             "rounds interleaved with canary samples "
                             "(the --check comparison point)")
    args = parser.parse_args(argv)

    if args.calibrate_gate > 0:
        calibrate_gate(args.smoke, args.calibrate_gate, args.repeat,
                       args.replay_mode)
        return 0

    suite = "smoke" if args.smoke else "full"
    mode = args.replay_mode or "default"
    print(f"perfbench: {suite} suite, best of {args.repeat}, "
          f"replay mode {mode}")
    # Bracket the timed cells with canary samples: the score taken
    # *before* the suite sees the same post-load throttle the first
    # cells run under (check() uses the minimum of the pair).
    canary_before = _canary_score() if args.check else None
    cells, profiles = run_suite(args.smoke, args.repeat,
                                replay_mode=args.replay_mode,
                                profile_top=args.profile)
    print(f"macro aggregate: {_macro_aggregate(cells):.0f} ops/s")
    probe = None
    parallel_probe = None
    if args.record or args.check:
        # Untimed instrumented runs: certify the latency-decomposition
        # and channel-overlap contracts without polluting the detached
        # throughput cells.
        probe = run_latency_probe(args.smoke)
        parallel_probe = run_parallel_probe(args.smoke)
    status = 0
    if args.record:
        record(args.record, suite, cells, probe, profiles,
               parallel=parallel_probe)
    if args.check:
        canary_now = min(canary_before, _canary_score())
        failing = check_cells(suite, cells, canary_now)
        for attempt in range(2):
            if not failing:
                break
            print(f"retrying {len(failing)} failing cell(s) "
                  f"(round {attempt + 1}/2): {', '.join(failing)}")
            bracket = _canary_score()
            recells, _ = run_suite(args.smoke, args.repeat,
                                   replay_mode=args.replay_mode,
                                   only=set(failing))
            bracket = min(bracket, _canary_score())
            failing = check_cells(suite, recells, bracket)
        status = 1 if failing else 0
        status = check_latency_probe(probe) or status
        status = check_parallel_probe(parallel_probe) or status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
