"""Trace-driven simulation: replay a workload through an FTL and collect
response-time statistics.

Replay model (matching the trace-driven methodology of the paper's
evaluation): the device serves one request at a time (FCFS).

* Closed-loop requests (``arrival_us is None``) are issued as soon as the
  device is free, so response time equals FTL service time.
* Open-loop requests (timestamped) queue behind the busy device, so
  response time includes queueing delay - this is how merge stalls in
  BAST/FAST hurt *subsequent* requests too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..flash.stats import FlashStats, wear_summary
from ..ftl.base import FlashTranslationLayer
from ..ftl.stats import FtlStats
from ..traces.model import Trace
from .metrics import ResponseStats


@dataclass
class SimulationResult:
    """Everything a benchmark needs to print its table row."""

    scheme: str
    trace_name: str
    requests: int
    page_ops: int
    responses: ResponseStats
    flash: FlashStats
    ftl_stats: FtlStats
    wear: Dict[str, float]
    ram_bytes: int
    device_busy_us: float

    @property
    def mean_response_us(self) -> float:
        return self.responses.overall.mean

    @property
    def erases(self) -> int:
        return self.flash.block_erases

    def row(self) -> Dict[str, float]:
        """Flat summary row for report tables."""
        s = self.responses.overall.summary()
        return {
            "scheme": self.scheme,
            "trace": self.trace_name,
            "requests": self.requests,
            "mean_us": s["mean_us"],
            "p99_us": s["p99_us"],
            "max_us": s["max_us"],
            "erases": self.flash.block_erases,
            "merges": self.ftl_stats.merges_total,
            "gc_copies": self.ftl_stats.gc_page_copies
            + self.ftl_stats.merge_page_copies,
            "map_reads": self.ftl_stats.map_reads,
            "map_writes": self.ftl_stats.map_writes,
            "ram_kb": self.ram_bytes / 1024.0,
        }


class Simulator:
    """Replays traces against one FTL instance."""

    def __init__(self, ftl: FlashTranslationLayer):
        self.ftl = ftl

    def warm_up(self, trace: Trace) -> None:
        """Run a trace without recording statistics (pre-conditioning)."""
        for request in trace:
            for lpn in request.pages:
                if request.is_write:
                    self.ftl.write(lpn, None)
                else:
                    self.ftl.read(lpn)

    def run(
        self,
        trace: Trace,
        warmup: Optional[Trace] = None,
        reset_counters: bool = True,
    ) -> SimulationResult:
        """Replay ``trace`` and return the measured statistics.

        Args:
            warmup: Optional pre-conditioning trace excluded from stats.
            reset_counters: Snapshot-and-diff the flash counters so the
                result reflects only the measured trace.
        """
        if warmup is not None:
            self.warm_up(warmup)
        flash_before = self.ftl.flash.stats.snapshot() if reset_counters \
            else FlashStats()
        ftl_before = self.ftl.stats.snapshot() if reset_counters \
            else FtlStats()
        responses = ResponseStats()
        device_free_at = 0.0
        busy = 0.0
        for request in trace:
            arrival = request.arrival_us if request.arrival_us is not None \
                else device_free_at
            if arrival > device_free_at:
                # The device is idle until this arrival: offer the gap to
                # the FTL's housekeeping (background GC etc.).
                used = self.ftl.background_work(arrival - device_free_at)
                if used > 0:
                    device_free_at += used
                    busy += used
            start = max(arrival, device_free_at)
            service = 0.0
            for lpn in request.pages:
                if request.is_write:
                    service += self.ftl.write(lpn, None).latency_us
                else:
                    service += self.ftl.read(lpn).latency_us
            completion = start + service
            responses.record(request.is_write, completion - arrival)
            device_free_at = completion
            busy += service
        return SimulationResult(
            scheme=self.ftl.name,
            trace_name=trace.name,
            requests=len(trace),
            page_ops=trace.page_ops,
            responses=responses,
            flash=self.ftl.flash.stats.diff(flash_before),
            ftl_stats=self.ftl.stats.diff(ftl_before),
            wear=wear_summary(self.ftl.flash.erase_counts()),
            ram_bytes=self.ftl.ram_bytes(),
            device_busy_us=busy,
        )
