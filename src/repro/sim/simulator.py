"""Trace-driven simulation: replay a workload through an FTL and collect
response-time statistics.

Replay model (matching the trace-driven methodology of the paper's
evaluation): the device serves one request at a time (FCFS).

* Closed-loop requests (``arrival_us is None``) are issued as soon as the
  device is free, so response time equals FTL service time.
* Open-loop requests (timestamped) queue behind the busy device, so
  response time includes queueing delay - this is how merge stalls in
  BAST/FAST hurt *subsequent* requests too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..flash.stats import FlashStats, wear_summary
from ..ftl.base import FlashTranslationLayer
from ..ftl.stats import FtlStats
from ..obs.tracer import Tracer
from ..traces.model import Trace
from .metrics import ResponseStats


@dataclass
class SimulationResult:
    """Everything a benchmark needs to print its table row."""

    scheme: str
    trace_name: str
    requests: int
    page_ops: int
    responses: ResponseStats
    flash: FlashStats
    ftl_stats: FtlStats
    wear: Dict[str, float]
    ram_bytes: int
    device_busy_us: float
    #: Per-cause time attribution (populated only when the run was traced;
    #: see repro.obs) - the "where did the time go" decomposition.
    attribution: Optional[Dict[str, object]] = field(default=None)

    @property
    def mean_response_us(self) -> float:
        return self.responses.overall.mean

    @property
    def erases(self) -> int:
        return self.flash.block_erases

    def row(self) -> Dict[str, float]:
        """Flat summary row for report tables."""
        s = self.responses.overall.summary()
        return {
            "scheme": self.scheme,
            "trace": self.trace_name,
            "requests": self.requests,
            "mean_us": s["mean_us"],
            "p99_us": s["p99_us"],
            "max_us": s["max_us"],
            "erases": self.flash.block_erases,
            "merges": self.ftl_stats.merges_total,
            "gc_copies": self.ftl_stats.gc_page_copies
            + self.ftl_stats.merge_page_copies,
            "map_reads": self.ftl_stats.map_reads,
            "map_writes": self.ftl_stats.map_writes,
            "ram_kb": self.ram_bytes / 1024.0,
        }


class Simulator:
    """Replays traces against one FTL instance.

    Args:
        ftl: The scheme under test.
        tracer: Optional :class:`~repro.obs.tracer.Tracer`; when given it
            is attached through the FTL down to the flash chip, host
            events are emitted per page operation, and the result carries
            a per-cause time attribution.  When None (the default) the
            whole replay path is tracing-free.
    """

    def __init__(
        self,
        ftl: FlashTranslationLayer,
        tracer: Optional[Tracer] = None,
    ):
        self.ftl = ftl
        self.tracer = tracer
        if tracer is not None:
            ftl.attach_tracer(tracer)

    def warm_up(self, trace: Trace) -> None:
        """Run a trace without recording statistics (pre-conditioning)."""
        for request in trace:
            for lpn in request.pages:
                if request.is_write:
                    self.ftl.write(lpn, None)
                else:
                    self.ftl.read(lpn)

    def run(
        self,
        trace: Trace,
        warmup: Optional[Trace] = None,
        reset_counters: bool = True,
    ) -> SimulationResult:
        """Replay ``trace`` and return the measured statistics.

        Args:
            warmup: Optional pre-conditioning trace excluded from stats.
            reset_counters: Snapshot-and-diff the flash counters so the
                result reflects only the measured trace.
        """
        tracer = self.tracer
        if warmup is not None:
            # Warm-up is pre-conditioning, not measurement: keep it out of
            # the trace so event streams describe only the measured run.
            if tracer is not None:
                tracer.suspend()
            self.warm_up(warmup)
            if tracer is not None:
                tracer.resume()
        if tracer is not None:
            tracer.begin_run(self.ftl.name)
        flash_before = self.ftl.flash.stats.snapshot() if reset_counters \
            else FlashStats()
        ftl_before = self.ftl.stats.snapshot() if reset_counters \
            else FtlStats()
        responses = ResponseStats()
        device_free_at = 0.0
        busy = 0.0
        for request in trace:
            arrival = request.arrival_us if request.arrival_us is not None \
                else device_free_at
            if arrival > device_free_at:
                # The device is idle until this arrival: offer the gap to
                # the FTL's housekeeping (background GC etc.).
                if tracer is not None:
                    tracer.set_clock(device_free_at)
                used = self.ftl.background_work(arrival - device_free_at)
                if used > 0:
                    device_free_at += used
                    busy += used
            start = max(arrival, device_free_at)
            if tracer is not None:
                # Events of this request are stamped from its service
                # start; flash ops advance the clock as they happen.
                tracer.set_clock(start)
            service = 0.0
            for lpn in request.pages:
                if request.is_write:
                    op_latency = self.ftl.write(lpn, None).latency_us
                else:
                    op_latency = self.ftl.read(lpn).latency_us
                service += op_latency
                if tracer is not None:
                    tracer.host_op(request.is_write, lpn, op_latency)
            completion = start + service
            responses.record(request.is_write, completion - arrival)
            device_free_at = completion
            busy += service
        attribution = None
        if tracer is not None:
            attribution = tracer.attribution.scheme_summary(self.ftl.name)
        return SimulationResult(
            scheme=self.ftl.name,
            trace_name=trace.name,
            requests=len(trace),
            page_ops=trace.page_ops,
            responses=responses,
            flash=self.ftl.flash.stats.diff(flash_before),
            ftl_stats=self.ftl.stats.diff(ftl_before),
            wear=wear_summary(self.ftl.flash.erase_counts()),
            ram_bytes=self.ftl.ram_bytes(),
            device_busy_us=busy,
            attribution=attribution,
        )
