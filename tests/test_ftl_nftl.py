"""Tests for the NFTL replacement-block baseline."""

import random

import pytest

from repro.flash import FlashGeometry, NandFlash, UNIT_TIMING
from repro.ftl.nftl import NftlFTL

from .ftl_conformance import FTLConformance


class TestNftlConformance(FTLConformance):
    def make_ftl(self, flash):
        # 30 primaries on a 48-block device: replacement chains grow on
        # demand and fold under space pressure.
        return NftlFTL(flash, logical_pages=self.LOGICAL_PAGES, max_chain=2)


def make_nftl(blocks=32, pages=8, logical=64, max_chain=2):
    flash = NandFlash(
        FlashGeometry(num_blocks=blocks, pages_per_block=pages),
        timing=UNIT_TIMING,
        enforce_sequential=False,
    )
    return NftlFTL(flash, logical_pages=logical, max_chain=max_chain)


class TestChains:
    def test_first_write_in_place(self):
        ftl = make_nftl()
        ftl.write(3, "x")
        assert ftl.flash.stats.page_programs == 1
        assert ftl.read(3).data == "x"

    def test_update_goes_to_replacement_block(self):
        ftl = make_nftl()
        ftl.write(3, "v0")
        ftl.write(3, "v1")
        chain = ftl._chains[0]
        assert len(chain.blocks) == 2
        assert ftl.read(3).data == "v1"

    def test_chain_limit_triggers_fold(self):
        ftl = make_nftl(max_chain=2)
        for v in range(5):  # primary + 2 replacements, then fold
            ftl.write(3, f"v{v}")
        assert ftl.stats.merges_full >= 1
        assert ftl.read(3).data == "v4"

    def test_fold_preserves_all_offsets(self):
        ftl = make_nftl(max_chain=1)
        for lpn in range(8):
            ftl.write(lpn, ("base", lpn))
        for v in range(4):  # hammer one offset to force folds
            ftl.write(2, ("hot", v))
        assert ftl.stats.merges_full >= 1
        assert ftl.read(2).data == ("hot", 3)
        for lpn in (0, 1, 3, 7):
            assert ftl.read(lpn).data == ("base", lpn)

    def test_hot_offset_folds_constantly(self):
        """The NFTL pathology: one hot page folds its whole chain."""
        ftl = make_nftl(max_chain=2)
        for v in range(60):
            ftl.write(5, v)
        # Each fold admits only max_chain+1 more writes to the hot offset.
        assert ftl.stats.merges_full >= 60 // 4 - 1

    def test_distinct_offsets_share_chain_blocks(self):
        ftl = make_nftl()
        for lpn in range(8):
            ftl.write(lpn, ("a", lpn))
        for lpn in range(8):
            ftl.write(lpn, ("b", lpn))
        chain = ftl._chains[0]
        assert len(chain.blocks) == 2  # one replacement serves all offsets
        for lpn in range(8):
            assert ftl.read(lpn).data == ("b", lpn)


class TestValidation:
    def test_too_small_device(self):
        flash = NandFlash(FlashGeometry(num_blocks=8, pages_per_block=8))
        with pytest.raises(ValueError):
            NftlFTL(flash, logical_pages=64)

    def test_bad_chain(self):
        flash = NandFlash(FlashGeometry(num_blocks=32, pages_per_block=8))
        with pytest.raises(ValueError):
            NftlFTL(flash, logical_pages=64, max_chain=0)

    def test_ram_accounting(self):
        ftl = make_nftl()
        base = ftl.ram_bytes()
        ftl.write(0, "x")
        assert ftl.ram_bytes() > base
