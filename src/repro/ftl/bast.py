"""BAST: Block-Associative Sector Translation (log-block FTL baseline).

BAST keeps a coarse block-level mapping table in RAM and absorbs updates in
a small pool of *log blocks*, each dedicated to one logical block.  When the
pool is exhausted (or a log block fills up) the log block is *merged* with
its data block:

* **switch merge** - the log block was written fully and exactly in order:
  it simply becomes the data block (1 erase);
* **partial merge** - the log block holds an in-order prefix: the remaining
  pages are copied in from the data block, then switch (copies + 1 erase);
* **full merge** - anything else: a fresh block gathers the latest copy of
  every page, then both old blocks are erased (up to ``pages_per_block``
  copies + 2 erases).

Under random writes almost every merge is a full merge, which is the
overhead LazyFTL eliminates.  Reference: Kim et al., "A space-efficient
flash translation layer for CompactFlash systems" (2002).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict

from ..flash.chip import NandFlash
from ..flash.geometry import MAP_ENTRY_BYTES
from ..flash.oob import OOBData, SequenceCounter
from ..obs.events import Cause, EventType
from ..perf.maptable import MapTable
from .base import UNMAPPED_READ_US, FlashTranslationLayer, HostResult
from .pool import BlockPool


class _LogBlock:
    """RAM state of one log block: where each offset's latest copy lives."""

    __slots__ = ("pbn", "entries")

    def __init__(self, pbn: int):
        self.pbn = pbn
        self.entries: Dict[int, int] = {}  # data offset -> log offset (latest)


class BastFTL(FlashTranslationLayer):
    """Block-Associative Sector Translation.

    Args:
        flash: Raw device.
        logical_pages: Exported logical space (rounded up internally to
            whole logical blocks).
        num_log_blocks: Size of the log-block pool; the scheme's key knob.
    """

    name = "BAST"
    requires_random_program = True

    def __init__(
        self,
        flash: NandFlash,
        logical_pages: int,
        num_log_blocks: int = 8,
    ):
        super().__init__(flash, logical_pages)
        if num_log_blocks < 1:
            raise ValueError("num_log_blocks must be >= 1")
        pages = flash.geometry.pages_per_block
        self.pages_per_block = pages
        self.num_lbns = (logical_pages + pages - 1) // pages
        required = self.num_lbns + num_log_blocks + 2
        if flash.geometry.num_blocks < required:
            raise ValueError(
                f"device too small: BAST needs >= {required} blocks "
                f"({self.num_lbns} data + {num_log_blocks} log + 2 spare)"
            )
        self.num_log_blocks = num_log_blocks
        self._block_map = MapTable(self.num_lbns)
        self._logs: "OrderedDict[int, _LogBlock]" = OrderedDict()  # LRU
        self._pool = BlockPool(range(flash.geometry.num_blocks))
        self._seq = SequenceCounter()

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------
    def read(self, lpn: int) -> HostResult:
        self._check_lpn(lpn)
        self.stats.host_reads += 1
        lbn, off = divmod(lpn, self.pages_per_block)
        log = self._logs.get(lbn)
        if log is not None and off in log.entries:
            ppn = self.flash.geometry.ppn_of(log.pbn, log.entries[off])
            data, _, latency = self.flash.read_page(ppn)
            return HostResult(latency, data)
        data_pbn = self._block_map.get(lbn)
        if data_pbn is not None:
            block = self.flash.block(data_pbn)
            if block.pages[off].is_valid:
                ppn = self.flash.geometry.ppn_of(data_pbn, off)
                data, _, latency = self.flash.read_page(ppn)
                return HostResult(latency, data)
        return HostResult(UNMAPPED_READ_US)

    def write(self, lpn: int, data: Any = None) -> HostResult:
        self._check_lpn(lpn)
        self.stats.host_writes += 1
        lbn, off = divmod(lpn, self.pages_per_block)
        latency = 0.0
        data_pbn = self._block_map.get(lbn)
        if data_pbn is None:
            # First write into this logical block: in-place program.
            data_pbn = self._pool.allocate()
            self._block_map[lbn] = data_pbn
            latency += self._program(data_pbn, off, lpn, data)
            return HostResult(latency)
        block = self.flash.block(data_pbn)
        if block.pages[off].is_free:
            latency += self._program(data_pbn, off, lpn, data)
            return HostResult(latency)
        # Update: must go to this logical block's log block.
        log = self._logs.get(lbn)
        if log is not None and self.flash.block(log.pbn).is_full:
            latency += self._merge(lbn)
            log = None
            # The merged data block now holds the page at `off` VALID, so
            # the rewrite below still needs a log block.
            data_pbn = self._block_map[lbn]
        if log is None:
            latency += self._allocate_log(lbn)
            log = self._logs[lbn]
        self._logs.move_to_end(lbn)
        log_block = self.flash.block(log.pbn)
        log_off = log_block.write_ptr
        ppn = self.flash.geometry.ppn_of(log.pbn, log_off)
        latency += self.flash.program_page(
            ppn, data, OOBData(lpn=lpn, seq=self._seq.next())
        )
        self._invalidate_previous(lbn, off, log)
        log.entries[off] = log_off
        return HostResult(latency)

    def ram_bytes(self) -> int:
        """Block map + per-log-block offset tables (2 bytes per entry)."""
        log_entries = sum(len(l.entries) for l in self._logs.values())
        return self.num_lbns * MAP_ENTRY_BYTES + log_entries * 2 + \
            self.num_log_blocks * MAP_ENTRY_BYTES

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _program(self, pbn: int, off: int, lpn: int, data: Any) -> float:
        ppn = self.flash.geometry.ppn_of(pbn, off)
        return self.flash.program_page(
            ppn, data, OOBData(lpn=lpn, seq=self._seq.next())
        )

    def _invalidate_previous(
        self, lbn: int, off: int, log: _LogBlock
    ) -> None:
        """Invalidate the copy superseded by a fresh log write."""
        prev_log_off = log.entries.get(off)
        if prev_log_off is not None:
            self.flash.invalidate_page(
                self.flash.geometry.ppn_of(log.pbn, prev_log_off)
            )
            return
        data_pbn = self._block_map.get(lbn)
        if data_pbn is not None:
            block = self.flash.block(data_pbn)
            if block.pages[off].is_valid:
                self.flash.invalidate_page(
                    self.flash.geometry.ppn_of(data_pbn, off)
                )

    def _allocate_log(self, lbn: int) -> float:
        """Attach a fresh log block to ``lbn``, evicting (merging) if full."""
        latency = 0.0
        if len(self._logs) >= self.num_log_blocks:
            victim_lbn = next(iter(self._logs))  # least recently used
            latency += self._merge(victim_lbn)
        self._logs[lbn] = _LogBlock(self._pool.allocate())
        return latency

    def _merge(self, lbn: int) -> float:
        """Merge ``lbn``'s log block with its data block (cheapest form)."""
        log = self._logs.pop(lbn)
        data_pbn = self._block_map[lbn]
        log_block = self.flash.block(log.pbn)
        k = log_block.write_ptr
        in_order_prefix = len(log.entries) == k and all(
            log.entries.get(i) == i for i in range(k)
        )
        if in_order_prefix and k == self.pages_per_block:
            kind = "switch"
        elif in_order_prefix and k > 0:
            kind = "partial"
        else:
            kind = "full"
        tracer = self._tracer
        if tracer is not None:
            tracer.span_start(EventType.MERGE_START, Cause.MERGE,
                              lpn=lbn, kind=kind)
        try:
            if kind == "switch":
                return self._switch_merge(lbn, log, data_pbn)
            if kind == "partial":
                return self._partial_merge(lbn, log, data_pbn, k)
            return self._full_merge(lbn, log, data_pbn)
        finally:
            if tracer is not None:
                tracer.span_end(EventType.MERGE_END, lpn=lbn, kind=kind)

    def _switch_merge(self, lbn: int, log: _LogBlock, data_pbn: int) -> float:
        """The full, in-order log block simply becomes the data block."""
        self.stats.merges_switch += 1
        self._block_map[lbn] = log.pbn
        # A switch merge only fires when the log block is full and
        # in-order, so every page of the old data block is superseded
        # by construction; no per-page invalidation precedes the erase.
        latency = self._erase(data_pbn)  # ftlint: disable=FTL010
        return latency

    def _partial_merge(
        self, lbn: int, log: _LogBlock, data_pbn: int, k: int
    ) -> float:
        """Copy the tail of the data block into the log block, then switch."""
        self.stats.merges_partial += 1
        latency = 0.0
        geometry = self.flash.geometry
        data_block = self.flash.block(data_pbn)
        for off in range(k, self.pages_per_block):
            if not data_block.pages[off].is_valid:
                continue
            src = geometry.ppn_of(data_pbn, off)
            data, oob, read_lat = self.flash.read_page(src)
            latency += read_lat
            latency += self.flash.program_page(
                geometry.ppn_of(log.pbn, off),
                data,
                OOBData(lpn=oob.lpn, seq=self._seq.next()),
            )
            self.flash.invalidate_page(src)
            self.stats.merge_page_copies += 1
        self._block_map[lbn] = log.pbn
        latency += self._erase(data_pbn)
        return latency

    def _full_merge(self, lbn: int, log: _LogBlock, data_pbn: int) -> float:
        """Gather every page's latest copy into a fresh block."""
        self.stats.merges_full += 1
        latency = 0.0
        geometry = self.flash.geometry
        new_pbn = self._pool.allocate()
        data_block = self.flash.block(data_pbn)
        for off in range(self.pages_per_block):
            if off in log.entries:
                src = geometry.ppn_of(log.pbn, log.entries[off])
            elif data_block.pages[off].is_valid:
                src = geometry.ppn_of(data_pbn, off)
            else:
                continue
            data, oob, read_lat = self.flash.read_page(src)
            latency += read_lat
            latency += self.flash.program_page(
                geometry.ppn_of(new_pbn, off),
                data,
                OOBData(lpn=oob.lpn, seq=self._seq.next()),
            )
            self.flash.invalidate_page(src)
            self.stats.merge_page_copies += 1
        self._block_map[lbn] = new_pbn
        latency += self._erase(data_pbn)
        latency += self._erase(log.pbn)
        return latency

    def _erase(self, pbn: int) -> float:
        latency = self.flash.erase_block(pbn)
        self.stats.gc_erases += 1
        self._pool.release(pbn)
        return latency
