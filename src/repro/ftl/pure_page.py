"""The ideal page-mapping FTL (the paper's "theoretically optimal" baseline).

Keeps the entire logical-to-physical page map in RAM, writes host pages
log-structured into an active block, and reclaims space with greedy garbage
collection.  No mapping traffic ever hits flash, so its response time is a
lower bound that LazyFTL is measured against ("very close to the
theoretically optimal solution").

Its RAM cost - 4 bytes per logical page, tens of MB for real devices - is
exactly what makes it impractical and motivates DFTL and LazyFTL.
"""

from __future__ import annotations

from typing import Any, Optional, Set

from ..flash.chip import NandFlash
from ..flash.geometry import MAP_ENTRY_BYTES
from ..flash.oob import OOBData, PageKind, SequenceCounter, make_oob
from ..flash.page import PageState
from ..obs.events import Cause, EventType
from ..perf.maptable import MapTable
from .base import UNMAPPED_READ_US, FlashTranslationLayer, HostResult
from .gc_policy import select_greedy
from .pool import BlockPool, OutOfBlocksError
from .stripe import StripedFrontier, stripe_ways


class PageFTL(FlashTranslationLayer):
    """Ideal page-level FTL with a fully RAM-resident map.

    Args:
        flash: Raw device.
        logical_pages: Exported logical space; must leave at least
            ``gc_free_threshold + 2`` blocks of slack for GC to function.
        gc_free_threshold: GC runs whenever the free pool is at or below
            this many blocks.
    """

    name = "ideal"

    def __init__(
        self,
        flash: NandFlash,
        logical_pages: int,
        gc_free_threshold: int = 2,
    ):
        super().__init__(flash, logical_pages)
        if gc_free_threshold < 2:
            raise ValueError("gc_free_threshold must be >= 2")
        pages = flash.geometry.pages_per_block
        min_blocks = (logical_pages + pages - 1) // pages + gc_free_threshold + 2
        if flash.geometry.num_blocks < min_blocks:
            raise ValueError(
                f"device too small: need >= {min_blocks} blocks for "
                f"{logical_pages} logical pages plus GC slack"
            )
        self.gc_free_threshold = gc_free_threshold
        self._map = MapTable(logical_pages)
        self._pages_per_block = flash.geometry.pages_per_block
        self._pool = BlockPool(range(flash.geometry.num_blocks))
        self._data_blocks: Set[int] = set()
        self._active: Optional[int] = None
        self._gc_active: Optional[int] = None
        self._seq = SequenceCounter()
        # Striped frontiers on multi-channel devices: the host and GC
        # active slots each rotate over up to `ways` open blocks so
        # program bursts overlap across parallel units.  None at 1x1x1,
        # keeping the single-slot paths bit-identical.
        units = flash.geometry.parallel_units
        if units > 1:
            ways = stripe_ways(units)
            self._active_stripe: Optional[StripedFrontier] = \
                StripedFrontier(units, ways)
            self._gc_stripe: Optional[StripedFrontier] = \
                StripedFrontier(units, ways)
            self._begin_op = getattr(flash, "begin_host_op", None)
        else:
            self._active_stripe = None
            self._gc_stripe = None
            self._begin_op = None

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------
    def read(self, lpn: int) -> HostResult:
        if not 0 <= lpn < self.logical_pages:
            self._check_lpn(lpn)
        if self._begin_op is not None:
            self._begin_op()
        self.stats.host_reads += 1
        ppn = self._map.raw[lpn]
        if ppn < 0:
            return HostResult(UNMAPPED_READ_US)
        flash = self.flash
        if self._tracer is None and flash.maintenance_fast_path():
            # Inline data read (scalar boundary-op hot spot); twin of the
            # call below (see NandFlash.maintenance_fast_path).
            ppb = self._pages_per_block
            page = flash.blocks[ppn // ppb].pages[ppn % ppb]
            fstats = flash.stats
            read_us = flash.timing.page_read_us
            fstats.page_reads += 1
            fstats.read_us += read_us
            return HostResult(read_us, page.data)
        data, _, latency = flash.read_page(ppn)
        return HostResult(latency, data)

    def write(self, lpn: int, data: Any = None) -> HostResult:
        if not 0 <= lpn < self.logical_pages:
            self._check_lpn(lpn)
        if self._begin_op is not None:
            self._begin_op()
        self.stats.host_writes += 1
        latency = self._ensure_active()
        active = self._active
        flash = self.flash
        ppb = self._pages_per_block
        block = flash.blocks[active]
        wp = block._write_ptr
        ppn = active * ppb + wp
        if self._tracer is None and flash.maintenance_fast_path():
            # Inline program + old-copy invalidate (scalar boundary-op
            # hot spot); twin of the calls below, bit-identical (see
            # NandFlash.maintenance_fast_path; make_oob produces the same
            # tuple the validated OOBData constructor would).
            page = block.pages[wp]
            page.state = PageState.VALID
            page.data = data
            seq = self._seq
            s = seq._next
            seq._next = s + 1
            page.oob = make_oob((lpn, s, PageKind.DATA, False))
            block.note_programmed()
            fstats = flash.stats
            program_us = flash.timing.page_program_us
            fstats.page_programs += 1
            fstats.program_us += program_us
            latency += program_us
            map_raw = self._map.raw
            old = map_raw[lpn]
            if old >= 0:
                oblock = flash.blocks[old // ppb]
                opage = oblock.pages[old % ppb]
                if opage.state is PageState.VALID:
                    opage.state = PageState.INVALID
                    oblock.note_invalidated()
                else:  # defensive: keep the slow path's accounting
                    flash.invalidate_page(old)
            map_raw[lpn] = ppn
            return HostResult(latency)
        latency += flash.program_page(
            ppn, data, OOBData(lpn, self._seq.next())
        )
        map_raw = self._map.raw
        old = map_raw[lpn]
        if old >= 0:
            flash.invalidate_page(old)
        map_raw[lpn] = ppn
        return HostResult(latency)

    def ram_bytes(self) -> int:
        return self.logical_pages * MAP_ENTRY_BYTES

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        flash: NandFlash,
        logical_pages: int,
        gc_free_threshold: int = 2,
    ) -> "PageFTL":
        """Rebuild an ideal-FTL instance from flash after a power loss.

        The ideal scheme keeps no flash-resident mapping metadata, so
        recovery is a full OOB scan: for every logical page the
        highest-sequence copy on flash is the live one (each program
        carries a fresh sequence number and eagerly invalidates its
        predecessor, so the newest copy is the acknowledged copy by
        construction).  Blocks holding any programmed page become data
        blocks; fully erased blocks return to the allocation pool.

        This is the reference recovery design the crash model checker
        (:mod:`repro.checks.crashmc`) compares LazyFTL's bounded-scan
        recovery against.
        """
        flash.power_on()
        ftl = cls(flash, logical_pages, gc_free_threshold)
        geometry = flash.geometry
        best: dict = {}  # lpn -> (seq, ppn)
        occupied: Set[int] = set()
        max_seq = -1
        pages_read = 0
        for pbn in range(geometry.num_blocks):
            if flash.block(pbn).is_bad:
                continue
            for offset in range(geometry.pages_per_block):
                ppn = geometry.ppn_of(pbn, offset)
                oob, _ = flash.probe_page(ppn)
                pages_read += 1
                if oob is None:
                    break  # sequential programming: the rest is erased
                occupied.add(pbn)
                if oob.seq > max_seq:
                    max_seq = oob.seq
                prev = best.get(oob.lpn)
                if prev is None or oob.seq > prev[0]:
                    best[oob.lpn] = (oob.seq, ppn)
        map_raw = ftl._map.raw
        for lpn, (_, ppn) in best.items():
            if lpn < logical_pages:
                map_raw[lpn] = ppn
        ftl._data_blocks = set(occupied)
        ftl._pool = BlockPool(
            b for b in range(geometry.num_blocks)
            if b not in occupied and not flash.block(b).is_bad
        )
        ftl._active = None
        ftl._gc_active = None
        ftl._seq.fast_forward(max_seq)
        ftl.stats.recovery_reads += pages_read
        return ftl

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _frontier(self, pbn: int) -> int:
        """Physical page number of the block's next free page."""
        block = self.flash.block(pbn)
        return self.flash.geometry.ppn_of(pbn, block.write_ptr)

    def _ensure_active(self) -> float:
        """Make sure the active block has a free page; may run GC."""
        stripe = self._active_stripe
        if stripe is not None:
            # Rotate across the open blocks (full ones retire to the
            # data set); open extra ways only while the pool sits above
            # the GC threshold so striping never eats the reclaim
            # cushion.
            latency = 0.0
            pbn = stripe.next_slot(self.flash, self._data_blocks.add)
            if pbn is None or (
                len(stripe.open_blocks) < stripe.ways
                and len(self._pool) > self.gc_free_threshold
            ):
                latency += self._reclaim_if_needed()
                pbn = self._pool.allocate_on(
                    stripe.uncovered_unit(), stripe.units
                )
                stripe.note_open(pbn)
            self._active = pbn
            return latency
        latency = 0.0
        if self._active is not None and self.flash.block(self._active).is_full:
            self._data_blocks.add(self._active)
            self._active = None
        if self._active is None:
            latency += self._reclaim_if_needed()
            self._active = self._pool.allocate()
        return latency

    def _reclaim_if_needed(self) -> float:
        latency = 0.0
        while len(self._pool) <= self.gc_free_threshold:
            latency += self._collect_one()
        return latency

    def _collect_one(self) -> float:
        """Run one GC pass: relocate a victim's valid pages, erase it."""
        flash = self.flash
        blocks = flash.blocks
        # select_greedy's key is a total order, so set iteration order
        # cannot change the victim.
        victim = select_greedy(  # ftlint: disable=FTL012
            map(blocks.__getitem__, self._data_blocks)
        )
        if victim is None:
            raise OutOfBlocksError("GC found no victim block")
        if victim.valid_count >= victim.pages_per_block:
            raise OutOfBlocksError(
                "GC victim is fully valid - logical space leaves no "
                "reclaimable slack (reduce logical_pages)"
            )
        self.stats.gc_runs += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.span_start(EventType.GC_START, Cause.GC,
                              ppn=victim.index)
        latency = 0.0
        try:
            if tracer is None and flash.maintenance_fast_path():
                latency = self._relocate_fast(victim)
            else:
                geometry = flash.geometry
                for offset in list(victim.valid_offsets()):
                    src = geometry.ppn_of(victim.index, offset)
                    data, oob, read_lat = flash.read_page(src)
                    latency += read_lat
                    latency += self._gc_destination()
                    dst = self._frontier(self._gc_active)
                    latency += flash.program_page(
                        dst, data, OOBData(lpn=oob.lpn, seq=self._seq.next())
                    )
                    self._map.raw[oob.lpn] = dst
                    flash.invalidate_page(src)
                    self.stats.gc_page_copies += 1
            latency += flash.erase_block(victim.index)
        finally:
            if tracer is not None:
                tracer.span_end(EventType.GC_END, ppn=victim.index)
        self.stats.gc_erases += 1
        self._data_blocks.discard(victim.index)
        self._pool.release(victim.index)
        return latency

    # flowlint: hot
    def _relocate_fast(self, victim: Any) -> float:
        """Inline twin of the relocation loop in :meth:`_collect_one`.

        Replicates the untraced raw-op closures' page and stats mutations
        (see :meth:`repro.flash.chip.NandFlash.maintenance_fast_path`)
        without a Python call per page; float accumulation order is the
        loop above's, so both produce bit-identical results.
        """
        flash = self.flash
        blocks = flash.blocks
        fstats = flash.stats
        stats = self.stats
        timing = flash.timing
        read_us = timing.page_read_us
        program_us = timing.page_program_us
        ppb = self._pages_per_block
        map_raw = self._map.raw
        seq = self._seq
        seq_val = seq._next
        VALID = PageState.VALID
        INVALID = PageState.INVALID
        DATA = PageKind.DATA
        vpages = victim.pages
        stripe = self._gc_stripe
        gc_active = self._gc_active
        latency = 0.0
        for offset in list(victim.valid_offsets()):
            page = vpages[offset]
            fstats.page_reads += 1
            fstats.read_us += read_us
            latency += read_us
            # Striped: rotate the pick every copy.  Serial: only refresh
            # once the destination fills.  The call never adds latency.
            if stripe is not None or gc_active is None or \
                    blocks[gc_active]._write_ptr >= ppb:
                self._gc_destination()
                gc_active = self._gc_active
            gblock = blocks[gc_active]
            wp = gblock._write_ptr
            lpn = page.oob.lpn
            dpage = gblock.pages[wp]
            dpage.state = VALID
            dpage.data = page.data
            dpage.oob = make_oob((lpn, seq_val, DATA, False))
            seq_val += 1
            gblock.note_programmed()
            fstats.page_programs += 1
            fstats.program_us += program_us
            latency += program_us
            map_raw[lpn] = gc_active * ppb + wp
            page.state = INVALID
            victim.note_invalidated()
            stats.gc_page_copies += 1
        seq._next = seq_val
        return latency

    def _gc_destination(self) -> float:
        """Ensure the GC active block has room; never triggers nested GC."""
        stripe = self._gc_stripe
        if stripe is not None:
            pbn = stripe.next_slot(self.flash, self._data_blocks.add)
            if pbn is None or (
                len(stripe.open_blocks) < stripe.ways
                and len(self._pool) > 1
            ):
                pbn = self._pool.allocate_on(
                    stripe.uncovered_unit(), stripe.units
                )
                stripe.note_open(pbn)
            self._gc_active = pbn
            return 0.0
        if self._gc_active is not None and self.flash.block(self._gc_active).is_full:
            self._data_blocks.add(self._gc_active)
            self._gc_active = None
        if self._gc_active is None:
            self._gc_active = self._pool.allocate()
        return 0.0
