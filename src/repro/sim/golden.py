"""Golden-stats capture: exact engine digests for regression testing.

The PR-3 hot-path overhaul (array-backed mapping tables, slotted flash
state, pre-bound fast/slow tracer dispatch) must not change a single
modeled statistic: erase counts, merge counts, response-time
distributions, RAM accounting - everything an experiment reports has to
stay bit-identical, because the figures in EXPERIMENTS.md were produced
by the pre-overhaul engine.

This module defines the canonical *golden workload* (a small device, two
deterministic traces, every scheme) and an :func:`engine_digest` that
flattens a :class:`~repro.sim.simulator.SimulationResult` into plain
JSON-serialisable data.  ``tools/gen_golden_stats.py`` regenerates the
committed snapshot (``tests/golden/engine_stats.json``) and
``tests/test_golden_stats.py`` asserts the current engine still produces
exactly the committed numbers.  Floats survive the JSON round-trip
losslessly (``repr`` round-trips IEEE-754 doubles), so ``==`` on the
loaded digest is a bit-exact comparison.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..traces.synthetic import hot_cold, uniform_random
from .factory import SCHEMES
from .runner import DeviceSpec, run_scheme
from .simulator import SimulationResult

#: Small device so GC/merges churn within a few thousand operations.
#: Mirrors the ``tools/check_all.py`` trace-smoke geometry.
GOLDEN_DEVICE = DeviceSpec(
    num_blocks=96,
    pages_per_block=16,
    page_size=512,
    logical_fraction=0.7,
)

#: The same device striped over four channels: pins down the parallel
#: model (striped placement + overlap timing) for the schemes that opt
#: into frontier striping.  Kept in a *separate* snapshot file
#: (``engine_stats_4ch.json``) so the serial snapshot's exact key-set
#: check keeps certifying that 1x1x1 behaviour never moved.
GOLDEN_DEVICE_4CH = DeviceSpec(
    num_blocks=96,
    pages_per_block=16,
    page_size=512,
    logical_fraction=0.7,
    channels=4,
)

#: Schemes whose area managers stripe frontier allocation across
#: parallel units (the rest are serial-only baselines).
STRIPED_SCHEMES = ("ideal", "DFTL", "LazyFTL")


def golden_traces():
    """The two deterministic traces every scheme replays for the digest.

    Uniform random writes are the merge/GC torture case; the hot/cold mix
    exercises read paths, skew handling and LazyFTL's cold-area logic.
    """
    pages = GOLDEN_DEVICE.logical_pages
    return [
        uniform_random(
            1500, pages, write_ratio=0.8, seed=11, name="golden-random",
        ),
        hot_cold(
            1200, pages, write_ratio=0.7, hot_fraction=0.2,
            hot_probability=0.8, seed=7, name="golden-hotcold",
        ),
    ]


def engine_digest(result: SimulationResult) -> Dict[str, object]:
    """Flatten a result into the exact-comparable statistics dictionary.

    Everything here is *modeled* state (simulated microseconds, counter
    values, RAM-model bytes), so it is invariant under pure-performance
    refactors of the engine internals.
    """
    return {
        "scheme": result.scheme,
        "trace": result.trace_name,
        "requests": result.requests,
        "page_ops": result.page_ops,
        "flash": result.flash.as_dict(),
        "ftl": result.ftl_stats.as_dict(),
        "responses": result.responses.summary(),
        "wear": dict(result.wear),
        "ram_bytes": result.ram_bytes,
        "device_busy_us": result.device_busy_us,
    }


def collect_golden_digests(
    schemes: Sequence[str] = SCHEMES,
) -> Dict[str, Dict[str, object]]:
    """Run the golden workload and return ``"scheme/trace" -> digest``.

    Steady-state preconditioning is part of the workload: it drives every
    scheme's garbage collector before measurement, which is where the
    schemes differ most (and where a refactor would most likely slip).
    """
    digests: Dict[str, Dict[str, object]] = {}
    for trace in golden_traces():
        for scheme in schemes:
            result = run_scheme(
                scheme, trace, device=GOLDEN_DEVICE, precondition="steady",
            )
            digests[f"{scheme}/{trace.name}"] = engine_digest(result)
    return digests


def collect_golden_digests_4ch(
    schemes: Sequence[str] = STRIPED_SCHEMES,
) -> Dict[str, Dict[str, object]]:
    """Golden digests on the 4-channel device for striping schemes.

    Same workload as :func:`collect_golden_digests`, replayed on
    :data:`GOLDEN_DEVICE_4CH`: pins striped placement and overlapped
    service latencies (``device_busy_us`` drops well below the serial
    figure while flash wear counters stay workload-determined).
    """
    digests: Dict[str, Dict[str, object]] = {}
    for trace in golden_traces():
        for scheme in schemes:
            result = run_scheme(
                scheme, trace, device=GOLDEN_DEVICE_4CH,
                precondition="steady",
            )
            digests[f"{scheme}/{trace.name}"] = engine_digest(result)
    return digests
