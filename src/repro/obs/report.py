"""Run reports: one artifact that makes a run's tail behaviour readable.

Glues the three observability layers into a single **snapshot** (a plain
JSON-serialisable dict):

* per-op-class latency decomposition from
  :class:`~repro.obs.latency.OpLatencyRecorder` (p50/p95/p99/p999 with
  per-cause buckets and the explicit ``unattributed`` remainder);
* windowed time-series from :class:`~repro.obs.series.SeriesCollector`;
* the run-level attribution and headline counters from the
  :class:`~repro.sim.simulator.SimulationResult`.

Snapshots are what ``repro report --json`` prints, what ``--snapshot``
saves, what ``tools/check_trace_schema.py`` validates in CI, and what
``benchmarks/perfbench.py`` embeds in BENCH files so the perf trajectory
carries tail data.  :func:`render_report` turns one into the terminal
dashboard (latency table, top-cause tail breakdown, sparklines) - it
works identically on a live run and on a reloaded snapshot.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Schema identifier every snapshot carries (bump on layout changes).
SNAPSHOT_SCHEMA = "repro-report/1"

#: Keys every per-op-class latency entry must carry.
CLASS_KEYS = ("count", "mean_us", "p50_us", "p95_us", "p99_us", "p999_us",
              "max_us", "by_cause_us", "unattributed_us",
              "attributed_fraction")

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Render a series as Unicode block characters (min-max scaled)."""
    if not values:
        return ""
    if len(values) > width:
        # Downsample by averaging equal chunks so spikes still register.
        chunk = len(values) / width
        values = [
            sum(values[int(i * chunk):max(int(i * chunk) + 1,
                                          int((i + 1) * chunk))])
            / max(1, int((i + 1) * chunk) - int(i * chunk))
            for i in range(width)
        ]
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    return "".join(
        _SPARK_LEVELS[min(len(_SPARK_LEVELS) - 1,
                          int((v - low) / span * len(_SPARK_LEVELS)))]
        for v in values
    )


# ----------------------------------------------------------------------
# Snapshot construction
# ----------------------------------------------------------------------
def build_snapshot(
    result: Any,
    recorder: Any,
    series: Optional[Any] = None,
    events_dropped: int = 0,
    events_emitted: int = 0,
) -> Dict[str, Any]:
    """Assemble the machine-readable snapshot for one scheme's run.

    Args:
        result: The :class:`~repro.sim.simulator.SimulationResult`.
        recorder: The run's :class:`OpLatencyRecorder`.
        series: Optional :class:`SeriesCollector` (omitted -> no series
            section).
        events_dropped: Ring-sink drop count, when a ring was attached.
        events_emitted: Total events the tracer emitted.
    """
    scheme = result.scheme
    latency = recorder.scheme_summary(scheme) or {
        "classes": {}, "outside_us": {},
        "invariant": {"checked_ops": 0, "violations": 0,
                      "max_residual_us": 0.0},
    }
    responses = result.responses.summary()
    snapshot: Dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "scheme": scheme,
        "trace": result.trace_name,
        "requests": result.requests,
        "page_ops": result.page_ops,
        "device_busy_us": result.device_busy_us,
        "events_emitted": events_emitted,
        "events_dropped": events_dropped,
        "latency": latency,
        "response": responses,
        "attribution": result.attribution,
    }
    if series is not None:
        snapshot["series"] = series.snapshot(scheme)
    return snapshot


def save_snapshot(snapshot: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(snapshot, stream, indent=1, sort_keys=True)
        stream.write("\n")


def load_snapshot(path: str) -> Dict[str, Any]:
    """Load and schema-check a saved snapshot (raises ValueError)."""
    with open(path, "r", encoding="utf-8") as stream:
        snapshot = json.load(stream)
    errors = validate_snapshot(snapshot)
    if errors:
        raise ValueError(
            f"{path}: not a valid {SNAPSHOT_SCHEMA} snapshot: "
            + "; ".join(errors[:4])
        )
    return snapshot


def validate_snapshot(snapshot: Any) -> List[str]:
    """Structural validation; returns human-readable problems (empty=ok)."""
    errors: List[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot is not a JSON object"]
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        errors.append(
            f"schema is {snapshot.get('schema')!r}, want {SNAPSHOT_SCHEMA!r}"
        )
    for key in ("scheme", "trace", "requests", "page_ops", "latency"):
        if key not in snapshot:
            errors.append(f"missing key {key!r}")
    latency = snapshot.get("latency")
    if not isinstance(latency, dict):
        errors.append("latency section is not an object")
        return errors
    classes = latency.get("classes", {})
    if not isinstance(classes, dict):
        errors.append("latency.classes is not an object")
        return errors
    for op_class, entry in classes.items():
        if not isinstance(entry, dict):
            errors.append(f"latency class {op_class!r} is not an object")
            continue
        for key in CLASS_KEYS:
            if key not in entry:
                errors.append(f"latency.{op_class} missing {key!r}")
        quantiles = [entry.get("p50_us", 0), entry.get("p95_us", 0),
                     entry.get("p99_us", 0), entry.get("p999_us", 0),
                     entry.get("max_us", 0)]
        if any(not isinstance(q, (int, float)) for q in quantiles):
            errors.append(f"latency.{op_class} quantiles not numeric")
        elif any(b < a - 1e-9 for a, b in zip(quantiles, quantiles[1:])):
            errors.append(
                f"latency.{op_class} quantiles not monotonic: {quantiles}"
            )
        fraction = entry.get("attributed_fraction")
        if isinstance(fraction, (int, float)) and not 0 <= fraction <= 1:
            errors.append(
                f"latency.{op_class}.attributed_fraction out of [0,1]: "
                f"{fraction}"
            )
        by_cause = entry.get("by_cause_us", {})
        if isinstance(by_cause, dict):
            for bucket, spent in by_cause.items():
                if not isinstance(spent, (int, float)) or spent < 0:
                    errors.append(
                        f"latency.{op_class}.by_cause_us[{bucket!r}] "
                        f"negative or non-numeric"
                    )
    invariant = latency.get("invariant")
    if not isinstance(invariant, dict) or "violations" not in invariant:
        errors.append("latency.invariant missing or malformed")
    series = snapshot.get("series")
    if series is not None:
        errors.extend(_validate_series(series))
    return errors


def _validate_series(series: Any) -> List[str]:
    errors: List[str] = []
    if not isinstance(series, dict):
        return ["series section is not an object"]
    for key in ("window_us", "windows_dropped", "windows"):
        if key not in series:
            errors.append(f"series missing {key!r}")
    windows = series.get("windows", [])
    if not isinstance(windows, list):
        return errors + ["series.windows is not a list"]
    last_index = None
    for i, window in enumerate(windows):
        if not isinstance(window, dict):
            errors.append(f"series.windows[{i}] is not an object")
            continue
        for key in ("window", "t_us", "host_ops", "ops_per_sec",
                    "stall_fractions"):
            if key not in window:
                errors.append(f"series.windows[{i}] missing {key!r}")
        index = window.get("window")
        if isinstance(index, int):
            if last_index is not None and index <= last_index:
                errors.append(
                    f"series.windows[{i}] index {index} not increasing"
                )
            last_index = index
    return errors


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value: Any, nd: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.{nd}f}"
    return f"{value:,}"


def _top_cause(parts: Dict[str, float]) -> Tuple[str, float]:
    if not parts:
        return ("unattributed", 0.0)
    bucket = max(parts, key=lambda b: parts[b])
    total = sum(parts.values())
    return (bucket, parts[bucket] / total if total > 0 else 0.0)


def render_report(snapshot: Dict[str, Any]) -> str:
    """The terminal dashboard for one snapshot (live or reloaded)."""
    from ..sim.report import format_table

    lines: List[str] = []
    head = (
        f"{snapshot['scheme']} on {snapshot['trace']}: "
        f"{snapshot['requests']:,} requests, "
        f"{snapshot['page_ops']:,} page ops, "
        f"device busy {snapshot.get('device_busy_us', 0.0) / 1e6:,.2f} s "
        f"(simulated)"
    )
    lines.append(head)
    emitted = snapshot.get("events_emitted", 0)
    dropped = snapshot.get("events_dropped", 0)
    if emitted or dropped:
        drop_note = (f", {dropped:,} DROPPED by the ring sink"
                     if dropped else "")
        lines.append(f"events: {emitted:,} emitted{drop_note}")
    latency = snapshot.get("latency", {})
    classes = latency.get("classes", {})
    # --- latency table ------------------------------------------------
    order = [c for c in ("read", "write", "trim", "overall")
             if c in classes]
    rows = []
    for op_class in order:
        entry = classes[op_class]
        rows.append([
            op_class, entry["count"], entry["mean_us"], entry["p50_us"],
            entry["p95_us"], entry["p99_us"], entry["p999_us"],
            entry["max_us"],
            f"{entry['attributed_fraction'] * 100.0:.2f}%",
        ])
    if rows:
        lines.append("")
        lines.append(format_table(
            ["class", "count", "mean_us", "p50_us", "p95_us", "p99_us",
             "p999_us", "max_us", "attributed"],
            rows, title="service latency by op class",
        ))
    # --- cause decomposition -----------------------------------------
    overall = classes.get("overall")
    if overall:
        total = overall.get("total_us", 0.0) or sum(
            overall["by_cause_us"].values()
        ) + overall["unattributed_us"]
        rows = []
        causes = dict(overall["by_cause_us"])
        causes["unattributed"] = overall["unattributed_us"]
        for bucket, spent in sorted(causes.items(), key=lambda kv: -kv[1]):
            share = spent / total if total > 0 else 0.0
            rows.append([bucket, spent / 1e3, f"{share * 100.0:.2f}%"])
        queueing = overall.get("queueing_us", 0.0)
        if queueing:
            rows.append(["(queueing, on top)", queueing / 1e3, "-"])
        channel_wait = overall.get("channel_wait_us", 0.0)
        if channel_wait:
            rows.append(["(channel wait, absorbed)", channel_wait / 1e3,
                         "-"])
        lines.append("")
        lines.append(format_table(
            ["cause", "ms", "share of service time"], rows,
            title="where the time went",
        ))
        # --- tail breakdown ------------------------------------------
        slowest = overall.get("slowest", [])
        if slowest:
            rows = []
            for op in slowest[:8]:
                bucket, share = _top_cause(op.get("by_cause_us", {}))
                rows.append([
                    op["dur_us"], bucket, f"{share * 100.0:.1f}%",
                ])
            lines.append("")
            lines.append(format_table(
                ["slowest op (us)", "dominant cause", "share"], rows,
                title="tail breakdown: the slowest ops and who caused them",
            ))
    invariant = latency.get("invariant", {})
    if invariant:
        verdict = ("OK" if not invariant.get("violations")
                   else f"{invariant['violations']} VIOLATION(S)")
        lines.append(
            f"\ndecomposition invariant: {verdict} over "
            f"{invariant.get('checked_ops', 0):,} ops "
            f"(max residual {invariant.get('max_residual_us', 0.0):.3g} us)"
        )
    # --- series sparklines -------------------------------------------
    series = snapshot.get("series")
    if series and series.get("windows"):
        windows = series["windows"]
        lines.append("")
        lines.append(
            f"time-series ({len(windows)} windows of "
            f"{series['window_us'] / 1e3:.0f} ms simulated time"
            + (f", {series['windows_dropped']} evicted" if
               series.get("windows_dropped") else "")
            + ")"
        )
        for label, key in (
            ("ops/s", "ops_per_sec"),
            ("WAF", "waf"),
            ("GC debt (pages)", "gc_debt_pages"),
            ("map hit rate", "map_hit_rate"),
            ("erase variance", "erase_variance"),
        ):
            values = [
                float(w.get(key) or 0.0) for w in windows
            ]
            if not any(values):
                continue
            lines.append(
                f"  {label:16s} {sparkline(values)}  "
                f"min {_fmt(min(values))}  max {_fmt(max(values))}"
            )
        gc_share = [
            float(w["stall_fractions"].get("gc", 0.0))
            + float(w["stall_fractions"].get("merge", 0.0))
            for w in windows
        ]
        if any(gc_share):
            lines.append(
                f"  {'GC+merge stall':16s} {sparkline(gc_share)}  "
                f"min {min(gc_share) * 100:.1f}%  "
                f"max {max(gc_share) * 100:.1f}%"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Live collection
# ----------------------------------------------------------------------
def collect_report(
    scheme: str,
    trace: Any,
    device: Optional[Any] = None,
    precondition: Any = True,
    window_us: Optional[float] = None,
    ring_capacity: int = 0,
    sanitize: bool = False,
    **options: Any,
) -> Tuple[Dict[str, Any], Any, Any]:
    """Run one scheme fully instrumented and build its snapshot.

    Returns ``(snapshot, result, tracer)``.  ``ring_capacity > 0``
    additionally attaches a :class:`RingBufferSink` (reachable as
    ``tracer.ring`` for ``--events-out`` dumps).  Imports the simulator
    lazily: obs stays importable below :mod:`repro.sim`.
    """
    from ..sim.runner import run_scheme
    from .latency import OpLatencyRecorder
    from .series import DEFAULT_WINDOW_US, SeriesCollector
    from .sinks import RingBufferSink
    from .tracer import Tracer

    recorder = OpLatencyRecorder()
    num_blocks = device.num_blocks if device is not None else None
    series = SeriesCollector(
        window_us=window_us if window_us else DEFAULT_WINDOW_US,
        num_blocks=num_blocks,
    )
    sinks: List[Any] = [series]
    ring = None
    if ring_capacity > 0:
        ring = RingBufferSink(capacity=ring_capacity)
        sinks.append(ring)
    tracer = Tracer(sinks=sinks, latency=recorder)
    tracer.ring = ring  # type: ignore[attr-defined]
    result = run_scheme(
        scheme, trace, device=device, precondition=precondition,
        tracer=tracer, sanitize=sanitize, **options,
    )
    snapshot = build_snapshot(
        result, recorder, series=series,
        events_dropped=ring.dropped if ring is not None else 0,
        events_emitted=tracer.events_emitted,
    )
    return snapshot, result, tracer
