"""RAM-footprint accounting across schemes (experiment E9's substrate).

Computes, for a given device size, how much RAM each scheme's translation
structures need - the axis on which LazyFTL/DFTL beat the ideal FTL and
the block-mapping schemes beat everyone (at the price of merges).
"""

from __future__ import annotations

from typing import Dict

from ..flash.geometry import MAP_ENTRY_BYTES, FlashGeometry


def ram_model(
    geometry: FlashGeometry,
    logical_pages: int,
    uba_blocks: int = 8,
    cba_blocks: int = 4,
    cmt_entries: int = 4096,
    num_log_blocks: int = 16,
) -> Dict[str, int]:
    """Analytic RAM footprint (bytes) of each scheme's mapping structures.

    Follows the conventions used throughout the FTL literature: 4-byte
    physical addresses, 8 bytes per cached (lpn, ppn) pair.
    """
    pages = geometry.pages_per_block
    entries_per_page = geometry.map_entries_per_page
    num_lbns = (logical_pages + pages - 1) // pages
    num_tvpns = (logical_pages + entries_per_page - 1) // entries_per_page
    umt_capacity = (uba_blocks + cba_blocks) * pages
    return {
        "ideal": logical_pages * MAP_ENTRY_BYTES,
        "BAST": num_lbns * MAP_ENTRY_BYTES
        + num_log_blocks * (MAP_ENTRY_BYTES + 2 * pages),
        "FAST": num_lbns * MAP_ENTRY_BYTES
        + num_log_blocks * pages * 2 * MAP_ENTRY_BYTES,
        "DFTL": cmt_entries * 2 * MAP_ENTRY_BYTES
        + num_tvpns * MAP_ENTRY_BYTES,
        "LazyFTL": umt_capacity * 2 * MAP_ENTRY_BYTES
        + num_tvpns * MAP_ENTRY_BYTES,
    }


def scalability_table(
    capacities_mib: list,
    pages_per_block: int = 64,
    page_size: int = 2048,
    logical_fraction: float = 0.85,
) -> Dict[int, Dict[str, int]]:
    """RAM footprint of each scheme as the device grows.

    The ideal FTL's RAM grows linearly with capacity while LazyFTL's grows
    only with the (fixed) UBA/CBA size plus the tiny GTD - the paper's
    "high scalability" claim in table form.
    """
    from ..flash.geometry import geometry_for_capacity

    table = {}
    for mib in capacities_mib:
        geometry = geometry_for_capacity(
            mib, pages_per_block=pages_per_block, page_size=page_size
        )
        logical = int(geometry.total_pages * logical_fraction)
        table[mib] = ram_model(geometry, logical)
    return table
