"""Tests for the sector-granular block-device layer."""

import random

import pytest

from repro.core import LazyConfig, LazyFTL
from repro.device import FlashBlockDevice
from repro.flash import FlashGeometry, NandFlash, UNIT_TIMING
from repro.ftl import PageFTL


def make_device(page_size=2048, sector_size=512, scheme="ideal"):
    flash = NandFlash(
        FlashGeometry(num_blocks=48, pages_per_block=16,
                      page_size=page_size),
        timing=UNIT_TIMING,
    )
    logical = int(flash.geometry.total_pages * 0.6)
    if scheme == "lazy":
        ftl = LazyFTL(flash, logical,
                      LazyConfig(uba_blocks=4, cba_blocks=2,
                                 gc_free_threshold=3))
    else:
        ftl = PageFTL(flash, logical)
    return FlashBlockDevice(ftl, sector_size=sector_size)


class TestGeometry:
    def test_capacity(self):
        dev = make_device()
        assert dev.sectors_per_page == 4
        assert dev.capacity_sectors == dev.ftl.logical_pages * 4

    def test_sector_size_must_divide_page(self):
        flash = NandFlash(FlashGeometry(num_blocks=48, pages_per_block=16))
        ftl = PageFTL(flash, 256)
        with pytest.raises(ValueError):
            FlashBlockDevice(ftl, sector_size=600)

    def test_range_checks(self):
        dev = make_device()
        with pytest.raises(ValueError):
            dev.read(-1, 1)
        with pytest.raises(ValueError):
            dev.read(0, 0)
        with pytest.raises(ValueError):
            dev.write(dev.capacity_sectors, ["x"])


class TestSectorIO:
    def test_aligned_page_write_and_read(self):
        dev = make_device()
        dev.write(0, ["a", "b", "c", "d"])
        result = dev.read(0, 4)
        assert result.sectors == ["a", "b", "c", "d"]

    def test_single_sector_roundtrip(self):
        dev = make_device()
        dev.write(5, ["payload"])
        assert dev.read(5, 1).sectors == ["payload"]

    def test_unwritten_sectors_read_none(self):
        dev = make_device()
        assert dev.read(100, 2).sectors == [None, None]

    def test_cross_page_read_write(self):
        dev = make_device()
        data = [f"s{i}" for i in range(10)]  # spans 3 pages from sector 2
        dev.write(2, data)
        assert dev.read(2, 10).sectors == data

    def test_sub_page_write_preserves_neighbours(self):
        dev = make_device()
        dev.write(0, ["a", "b", "c", "d"])
        dev.write(1, ["B"])  # middle sector of the same page
        assert dev.read(0, 4).sectors == ["a", "B", "c", "d"]

    def test_rmw_accounting(self):
        dev = make_device()
        dev.write(0, ["a", "b", "c", "d"])  # aligned: no RMW
        assert dev.rmw_count == 0
        dev.write(1, ["B"])
        assert dev.rmw_count == 1

    def test_rmw_costs_a_page_read(self):
        dev = make_device()
        dev.write(0, ["a", "b", "c", "d"])
        aligned = dev.write(4, ["e", "f", "g", "h"]).latency_us
        partial = dev.write(1, ["B"]).latency_us
        assert partial == aligned + 1.0  # one extra page read (UNIT timing)

    def test_latency_aggregated_over_pages(self):
        dev = make_device()
        result = dev.write(0, [f"s{i}" for i in range(8)])  # two pages
        assert result.latency_us == 2.0


class TestOnLazyFTL:
    def test_random_sector_workload_integrity(self):
        dev = make_device(scheme="lazy")
        rng = random.Random(0)
        shadow = {}
        for i in range(3000):
            lba = rng.randrange(dev.capacity_sectors)
            n = rng.choice((1, 1, 2, 4))
            n = min(n, dev.capacity_sectors - lba)
            data = [(lba + j, i) for j in range(n)]
            dev.write(lba, data)
            for j in range(n):
                shadow[lba + j] = (lba + j, i)
        for lba, value in shadow.items():
            assert dev.read(lba, 1).sectors == [value]

    def test_flush_propagates_to_lazyftl(self):
        dev = make_device(scheme="lazy")
        dev.write(0, ["x"])
        assert len(dev.ftl.umt) > 0
        dev.flush()
        assert len(dev.ftl.umt) == 0

    def test_flush_noop_on_schemes_without_flush(self):
        dev = make_device(scheme="ideal")
        assert dev.flush() == 0.0
