"""E1 - Table: simulation parameters.

Reproduces the evaluation-setup table: flash geometry, operation
latencies, scheme configurations and RAM budgets.  (The paper's setup is
a 32 GB small-block SLC device with 25 us / 200 us / 1.5 ms latencies; we
run its ~1000x scaled twin - see DESIGN.md.)
"""

from repro.flash import SLC_TIMING
from repro.sim import DEFAULT_OPTIONS, HEADLINE_DEVICE, lazy_headline_options
from repro.sim.report import format_table

from conftest import emit


def build_parameter_table() -> str:
    d = HEADLINE_DEVICE
    lazy_cfg = lazy_headline_options(d.num_blocks)["config"]
    rows = [
        ["flash blocks", d.num_blocks],
        ["pages per block", d.pages_per_block],
        ["page size (B)", d.page_size],
        ["raw capacity (MiB)",
         d.num_blocks * d.pages_per_block * d.page_size // (1 << 20)],
        ["logical space (pages)", d.logical_pages],
        ["overprovisioning", f"{1 - d.logical_fraction:.0%}"],
        ["page read (us)", SLC_TIMING.page_read_us],
        ["page program (us)", SLC_TIMING.page_program_us],
        ["block erase (us)", SLC_TIMING.block_erase_us],
        ["mapping entries / GMT page", d.page_size // 4],
        ["LazyFTL UBA blocks (m_u)", lazy_cfg.uba_blocks],
        ["LazyFTL CBA blocks (m_c)", lazy_cfg.cba_blocks],
        ["DFTL CMT entries (RAM parity)",
         DEFAULT_OPTIONS["DFTL"]["cmt_entries"]],
        ["BAST log blocks", DEFAULT_OPTIONS["BAST"]["num_log_blocks"]],
        ["FAST RW log blocks",
         DEFAULT_OPTIONS["FAST"]["num_rw_log_blocks"]],
    ]
    return format_table(["parameter", "value"], rows,
                        title="E1: simulation parameters")


def test_e01_parameters(benchmark):
    text = benchmark.pedantic(build_parameter_table, rounds=1, iterations=1)
    emit("e01_parameters", text)
    assert "E1" in text
