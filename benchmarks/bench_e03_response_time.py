"""E3 - Figure: average response time, every scheme x every workload.

The paper's headline figure.  Expected shape (abstract): LazyFTL
outperforms BAST, FAST and DFTL on every workload and sits close to the
theoretically optimal page-mapping FTL; log-block schemes collapse under
random writes but survive sequential ones.
"""

from repro.analysis import optimality_gap
from repro.sim import HEADLINE_DEVICE, compare_schemes
from repro.sim.report import format_series

from conftest import emit, headline_traces

SCHEMES = ("BAST", "FAST", "DFTL", "LazyFTL", "ideal")


def run_grid():
    footprint = int(HEADLINE_DEVICE.logical_pages * 0.8)
    grid = {}
    for trace in headline_traces(footprint):
        grid[trace.name] = compare_schemes(
            trace, schemes=SCHEMES, device=HEADLINE_DEVICE,
            precondition="steady",
        )
    return grid


def test_e03_response_time(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    trace_names = list(grid)
    series = {
        scheme: [grid[t][scheme].mean_response_us for t in trace_names]
        for scheme in SCHEMES
    }
    text = format_series(
        "scheme \\ trace", trace_names, series,
        title="E3: mean response time (us) per scheme per workload",
    )
    gaps = {
        t: {s: round(g, 2) for s, g in optimality_gap(grid[t]).items()}
        for t in trace_names
    }
    text += "\n\nresponse time as a multiple of the ideal page FTL:\n"
    for t in trace_names:
        text += f"  {t:12s} " + "  ".join(
            f"{s}={gaps[t][s]:.2f}x" for s in SCHEMES
        ) + "\n"
    tails = {
        scheme: [
            grid[t][scheme].responses.overall.summary()["p99_us"]
            for t in trace_names
        ]
        for scheme in SCHEMES
    }
    text += "\n" + format_series(
        "scheme \\ trace", trace_names, tails,
        title="E3 (tail view): p99 response time (us); "
              "decomposition in E15",
    )
    emit("e03_response_time", text)

    # Paper shape: LazyFTL beats every existing scheme on the random and
    # OLTP workloads and stays close to optimal everywhere.  On the pure
    # sequential sweep the block-mapping schemes are legitimately at the
    # optimum (in-place writes + switch merges, no mapping traffic), so
    # there the requirement is parity-with-ideal for everyone.
    for t in trace_names:
        lazy = grid[t]["LazyFTL"].mean_response_us
        assert lazy <= grid[t]["DFTL"].mean_response_us * 1.05
        if t != "sequential":
            assert lazy <= grid[t]["BAST"].mean_response_us * 1.02
            assert lazy <= grid[t]["FAST"].mean_response_us * 1.02
    seq_gap = optimality_gap(grid["sequential"])
    assert all(g < 1.35 for g in seq_gap.values()), seq_gap
    random_gap = optimality_gap(grid["random"])
    assert random_gap["LazyFTL"] < 1.6
    assert random_gap["BAST"] > 5
    assert random_gap["FAST"] > 5
