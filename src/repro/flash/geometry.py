"""Physical layout of a simulated NAND flash device.

The geometry maps between the flat *physical page number* (ppn) address space
used by FTLs and the (block, page-offset) coordinates used by the device
itself.  Everything downstream (FTLs, the simulator, benchmarks) sizes itself
from a single :class:`FlashGeometry` instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import OutOfRangeError

#: Bytes of a logical/physical mapping entry (4-byte physical page address),
#: the figure LazyFTL and DFTL use when sizing mapping pages and RAM tables.
MAP_ENTRY_BYTES = 4


@dataclass(frozen=True)
class FlashGeometry:
    """Immutable description of a flash device's layout.

    Parameters mirror the small-block SLC devices of the paper's era by
    default (2 KiB pages, 64 pages per block -> 128 KiB blocks).

    Attributes:
        num_blocks: Total number of erase blocks on the device.
        pages_per_block: Pages in one erase block.
        page_size: Data bytes per page (excluding the OOB spare area).
        oob_size: Spare ("out of band") bytes per page, used by FTLs for
            reverse mappings, sequence numbers and flags.
    """

    num_blocks: int = 1024
    pages_per_block: int = 64
    page_size: int = 2048
    oob_size: int = 64

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.pages_per_block <= 0:
            raise ValueError("pages_per_block must be positive")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.oob_size < 0:
            raise ValueError("oob_size must be non-negative")

    @property
    def total_pages(self) -> int:
        """Total physical pages on the device."""
        return self.num_blocks * self.pages_per_block

    @property
    def block_bytes(self) -> int:
        """Data capacity of one erase block in bytes."""
        return self.pages_per_block * self.page_size

    @property
    def capacity_bytes(self) -> int:
        """Raw data capacity of the device in bytes."""
        return self.num_blocks * self.block_bytes

    @property
    def map_entries_per_page(self) -> int:
        """How many 4-byte mapping entries fit in one mapping page.

        This determines the fan-out of the GMT/translation pages in both
        LazyFTL and DFTL: with 2 KiB pages one mapping page covers 512
        logical pages.
        """
        return self.page_size // MAP_ENTRY_BYTES

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    def ppn_of(self, block: int, offset: int) -> int:
        """Return the flat physical page number for (block, page offset)."""
        self.check_block(block)
        if not 0 <= offset < self.pages_per_block:
            raise OutOfRangeError("page offset", offset, self.pages_per_block)
        return block * self.pages_per_block + offset

    def block_of(self, ppn: int) -> int:
        """Return the erase block that physical page ``ppn`` belongs to."""
        self.check_ppn(ppn)
        return ppn // self.pages_per_block

    def offset_of(self, ppn: int) -> int:
        """Return the in-block page offset of physical page ``ppn``."""
        self.check_ppn(ppn)
        return ppn % self.pages_per_block

    def split_ppn(self, ppn: int) -> tuple:
        """Return ``(block, offset)`` for physical page ``ppn``."""
        self.check_ppn(ppn)
        return divmod(ppn, self.pages_per_block)

    def check_ppn(self, ppn: int) -> None:
        """Raise :class:`OutOfRangeError` if ``ppn`` is not on the device."""
        if not 0 <= ppn < self.total_pages:
            raise OutOfRangeError("ppn", ppn, self.total_pages)

    def check_block(self, block: int) -> None:
        """Raise :class:`OutOfRangeError` for an invalid block number."""
        if not 0 <= block < self.num_blocks:
            raise OutOfRangeError("block", block, self.num_blocks)


def geometry_for_capacity(
    capacity_mib: int,
    pages_per_block: int = 64,
    page_size: int = 2048,
) -> FlashGeometry:
    """Build a geometry with (at least) ``capacity_mib`` MiB of raw capacity.

    Convenience used by benchmarks that sweep device sizes.
    """
    block_bytes = pages_per_block * page_size
    blocks = max(1, (capacity_mib * 1024 * 1024 + block_bytes - 1) // block_bytes)
    return FlashGeometry(
        num_blocks=blocks, pages_per_block=pages_per_block, page_size=page_size
    )
