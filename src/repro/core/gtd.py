"""GTD: the Global Translation Directory.

One RAM entry per GMT (mapping) page, recording where its current flash
copy lives.  With 2 KiB pages each GMT page covers 512 logical pages, so
the GTD is ~1/512 the size of a full page map - the small RAM structure
that makes LazyFTL's in-flash mapping affordable.
"""

from __future__ import annotations

from typing import List, Optional

from ..flash.geometry import MAP_ENTRY_BYTES
from ..perf.maptable import MapTable


class GlobalTranslationDirectory:
    """Locates every GMT page on flash.

    An entry of None means the GMT page has never been written: every
    logical page it covers is unmapped.  Backed by a flat
    :class:`~repro.perf.maptable.MapTable` (sentinel -1) rather than a
    boxed list so directory probes on the translation hot path stay cheap.
    """

    def __init__(self, num_tvpns: int):
        if num_tvpns <= 0:
            raise ValueError("num_tvpns must be positive")
        self._entries = MapTable(num_tvpns)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, tvpn: int) -> Optional[int]:
        """Flash location of GMT page ``tvpn`` (None if never written)."""
        return self._entries[tvpn]

    def set(self, tvpn: int, ppn: int) -> None:
        self._entries[tvpn] = ppn

    def materialized(self) -> int:
        """How many GMT pages exist on flash."""
        return self._entries.mapped_count()

    def ram_bytes(self) -> int:
        """4 bytes per directory entry, the paper's convention."""
        return len(self._entries) * MAP_ENTRY_BYTES

    def snapshot(self) -> List[Optional[int]]:
        """Copy of the directory for checkpoints."""
        return self._entries.snapshot()

    def restore(self, entries: List[Optional[int]]) -> None:
        """Replace the directory contents (recovery path)."""
        if len(entries) != len(self._entries):
            raise ValueError(
                f"directory size mismatch: {len(entries)} != {len(self._entries)}"
            )
        self._entries.restore(entries)
