"""Satellite tests for the columnar trace engine and binary trace cache.

Covers the PR-4 pipeline end to end: lossless ``Trace`` <->
``ColumnarTrace`` round-trips (property-style over seeded random
workloads), the ``.rtc`` binary format, cache hit/miss/invalidation
semantics (mtime bump, parameter change, format-version bump, corrupt
file fallback), the merged columnar path against the object path, and
the headline acceptance property: a second invocation of the benchmark
workload build performs zero trace text parsing.
"""

import importlib.util
import math
import os
import pathlib
import random

import pytest

from repro.traces import cache as trace_cache
from repro.traces import load_trace, save_trace, uniform_random
from repro.traces.columnar import NO_ARRIVAL, ColumnarTrace
from repro.traces.model import IORequest, OpType, Trace, merge_traces

REPO = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture
def fresh_cache(tmp_path):
    """A private, empty cache directory with zeroed counters.

    Restores the session-wide test cache (tests/conftest.py points it at
    a per-session temporary directory via ``REPRO_TRACE_CACHE_DIR``)
    afterwards so other tests keep their warm entries.
    """
    trace_cache.configure(tmp_path / "trace-cache")
    trace_cache.stats.reset()
    yield trace_cache
    trace_cache.stats.reset()
    trace_cache.configure()


def random_requests(rng, n, open_loop_fraction=0.5):
    """A mixed workload: multi-page requests, some with arrivals."""
    requests = []
    clock = 0.0
    for _ in range(n):
        op = OpType.WRITE if rng.random() < 0.6 else OpType.READ
        arrival = None
        if rng.random() < open_loop_fraction:
            clock += rng.random() * 10.0
            arrival = clock
        requests.append(
            IORequest(op, rng.randrange(0, 500), 1 + rng.randrange(4),
                      arrival_us=arrival)
        )
    return requests


class TestColumnarRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("open_loop_fraction", [0.0, 0.5, 1.0])
    def test_requests_columns_requests(self, seed, open_loop_fraction):
        rng = random.Random(seed)
        requests = random_requests(rng, 200, open_loop_fraction)
        cols = ColumnarTrace.from_requests(requests, name="rt")
        assert cols.to_requests() == requests
        # Equality holds at the columnar layer too.
        assert ColumnarTrace.from_requests(cols.to_requests()) == cols

    def test_trace_facade_round_trip(self):
        rng = random.Random(7)
        requests = random_requests(rng, 100)
        trace = Trace(requests, name="facade")
        rebuilt = trace.to_columnar().to_trace()
        assert rebuilt.requests == requests
        assert rebuilt.page_ops == trace.page_ops
        assert rebuilt.footprint() == trace.footprint()
        assert rebuilt.max_lpn == trace.max_lpn

    def test_fully_closed_loop_drops_arrival_column(self):
        requests = [IORequest(OpType.WRITE, i, 1) for i in range(5)]
        cols = ColumnarTrace.from_requests(requests)
        assert cols.arrivals is None
        assert cols.to_requests() == requests

    def test_mixed_loop_uses_nan_sentinel(self):
        requests = [
            IORequest(OpType.WRITE, 0, 1, arrival_us=5.0),
            IORequest(OpType.READ, 1, 2),
            IORequest(OpType.WRITE, 2, 1, arrival_us=9.5),
        ]
        cols = ColumnarTrace.from_requests(requests)
        assert list(cols.arrivals)[0] == 5.0
        assert math.isnan(cols.arrivals[1])
        # The sentinel converts back to arrival_us=None, losslessly.
        assert cols.to_requests() == requests

    def test_none_arrivals_equal_all_nan_column(self):
        closed = ColumnarTrace([1], [0], [1], None)
        sentinel = ColumnarTrace([1], [0], [1], [NO_ARRIVAL])
        assert closed == sentinel
        assert sentinel == closed

    @pytest.mark.parametrize("kwargs", [
        dict(ops=[2], lpns=[0], npages=[1]),
        dict(ops=[1], lpns=[-1], npages=[1]),
        dict(ops=[1], lpns=[0], npages=[0]),
        dict(ops=[1], lpns=[0], npages=[1], arrivals=[-1.0]),
        dict(ops=[1, 0], lpns=[0], npages=[1]),
        dict(ops=[1], lpns=[0], npages=[1], arrivals=[1.0, 2.0]),
    ])
    def test_invalid_columns_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ColumnarTrace(**kwargs)

    def test_summaries_match_object_layer(self):
        rng = random.Random(11)
        requests = random_requests(rng, 150)
        cols = ColumnarTrace.from_requests(requests)
        assert cols.page_ops == sum(r.npages for r in requests)
        assert cols.write_page_ops == sum(
            r.npages for r in requests if r.is_write
        )
        assert cols.max_lpn == max(
            r.lpn + r.npages - 1 for r in requests
        )
        assert cols.footprint() == len(
            {p for r in requests for p in r.pages}
        )


class TestBinaryFormat:
    def round_trip(self, cols):
        return trace_cache.loads_columnar(trace_cache.dumps_columnar(cols))

    def test_round_trip_preserves_columns_and_name(self):
        rng = random.Random(3)
        cols = ColumnarTrace.from_requests(
            random_requests(rng, 120), name="binary-rt"
        )
        loaded = self.round_trip(cols)
        assert loaded == cols
        assert loaded.name == "binary-rt"

    def test_round_trip_closed_loop(self):
        cols = ColumnarTrace([1, 0], [4, 9], [2, 1], None, name="cl")
        loaded = self.round_trip(cols)
        assert loaded == cols and loaded.arrivals is None

    def test_bad_magic_rejected(self):
        data = trace_cache.dumps_columnar(ColumnarTrace([1], [0], [1]))
        assert trace_cache.loads_columnar(b"XXXX" + data[4:]) is None

    def test_truncated_payload_rejected(self):
        data = trace_cache.dumps_columnar(ColumnarTrace([1], [0], [1]))
        assert trace_cache.loads_columnar(data[:-3]) is None
        assert trace_cache.loads_columnar(data[:4]) is None

    def test_flipped_payload_byte_fails_crc(self):
        data = bytearray(
            trace_cache.dumps_columnar(ColumnarTrace([1], [0], [1]))
        )
        data[-1] ^= 0xFF
        assert trace_cache.loads_columnar(bytes(data)) is None

    def test_future_format_version_rejected(self):
        data = bytearray(
            trace_cache.dumps_columnar(ColumnarTrace([1], [0], [1]))
        )
        data[4] ^= 0xFF  # version field follows the 4-byte magic
        assert trace_cache.loads_columnar(bytes(data)) is None


class TestCacheInvalidation:
    def write_trace_file(self, tmp_path, n=50, seed=0):
        path = tmp_path / "w.trace"
        save_trace(uniform_random(n, 256, seed=seed, name="w"), str(path))
        # The generator above also runs through the cache; zero the
        # counters so each test observes only its own load_trace calls.
        trace_cache.stats.reset()
        return path

    def test_second_load_hits_without_text_parse(self, fresh_cache, tmp_path):
        path = self.write_trace_file(tmp_path)
        first = load_trace(str(path))
        assert fresh_cache.stats.misses == 1
        assert fresh_cache.stats.text_parses == 1
        assert fresh_cache.stats.stores == 1
        fresh_cache.stats.reset()
        second = load_trace(str(path))
        assert fresh_cache.stats.hits == 1
        assert fresh_cache.stats.text_parses == 0
        assert fresh_cache.stats.builds == 0
        assert second.to_columnar() == first.to_columnar()
        assert second.name == first.name

    def test_mtime_bump_invalidates(self, fresh_cache, tmp_path):
        path = self.write_trace_file(tmp_path)
        load_trace(str(path))
        st = os.stat(path)
        os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        fresh_cache.stats.reset()
        load_trace(str(path))
        assert fresh_cache.stats.misses == 1
        assert fresh_cache.stats.text_parses == 1

    def test_content_edit_invalidates(self, fresh_cache, tmp_path):
        path = self.write_trace_file(tmp_path)
        load_trace(str(path))
        with open(path, "a") as f:
            f.write("W 7 1\n")
        fresh_cache.stats.reset()
        reloaded = load_trace(str(path))
        assert fresh_cache.stats.misses == 1
        assert reloaded.requests[-1] == IORequest(OpType.WRITE, 7, 1)

    def test_generator_param_change_misses(self, fresh_cache):
        uniform_random(40, 128, seed=0)
        fresh_cache.stats.reset()
        uniform_random(40, 128, seed=1)
        assert fresh_cache.stats.misses == 1
        fresh_cache.stats.reset()
        uniform_random(40, 128, seed=0)
        assert fresh_cache.stats.hits == 1
        assert fresh_cache.stats.builds == 0

    def test_generator_second_run_identical(self, fresh_cache):
        cold = uniform_random(60, 128, seed=5)
        warm = uniform_random(60, 128, seed=5)
        assert fresh_cache.stats.hits == 1
        assert warm.to_columnar() == cold.to_columnar()

    def test_format_version_bump_invalidates(self, fresh_cache, tmp_path,
                                             monkeypatch):
        path = self.write_trace_file(tmp_path)
        load_trace(str(path))
        monkeypatch.setattr(trace_cache, "FORMAT_VERSION",
                            trace_cache.FORMAT_VERSION + 1)
        fresh_cache.stats.reset()
        load_trace(str(path))
        # The version is part of the key, so a bump misses cleanly (it
        # never even finds, let alone mis-reads, the old-format file).
        assert fresh_cache.stats.misses == 1
        assert fresh_cache.stats.text_parses == 1

    def test_corrupt_cache_file_falls_back_to_parse(self, fresh_cache,
                                                    tmp_path):
        path = self.write_trace_file(tmp_path)
        first = load_trace(str(path))
        key = trace_cache.file_key("trace-file", str(path))
        cache_file = fresh_cache.active().path_for(key)
        assert cache_file.exists()
        cache_file.write_bytes(b"not a trace cache file")
        fresh_cache.stats.reset()
        recovered = load_trace(str(path))
        assert fresh_cache.stats.misses == 1
        assert fresh_cache.stats.text_parses == 1
        assert fresh_cache.stats.stores == 1  # rebuilt and re-persisted
        assert recovered.to_columnar() == first.to_columnar()

    def test_disabled_cache_always_builds(self, tmp_path):
        trace_cache.configure(enabled=False)
        try:
            trace_cache.stats.reset()
            path = self.write_trace_file(tmp_path)
            load_trace(str(path))
            load_trace(str(path))
            assert trace_cache.stats.builds == 2
            assert trace_cache.stats.hits == 0
            assert trace_cache.stats.stores == 0
        finally:
            trace_cache.stats.reset()
            trace_cache.configure()

    def test_store_failure_degrades_gracefully(self, tmp_path, monkeypatch):
        # A cache rooted somewhere unwritable builds in memory instead.
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        trace_cache.configure(blocked / "sub")
        try:
            trace_cache.stats.reset()
            trace = uniform_random(30, 64, seed=2)
            assert len(trace) == 30
            assert trace_cache.stats.stores == 0
            assert trace_cache.stats.builds == 1
        finally:
            trace_cache.stats.reset()
            trace_cache.configure()


class TestMergedColumnarPath:
    def test_merge_matches_object_path_with_tie_break(self):
        a = Trace([
            IORequest(OpType.WRITE, 0, 1, arrival_us=10.0),
            IORequest(OpType.WRITE, 1, 1, arrival_us=20.0),
        ], name="a")
        b = Trace([
            IORequest(OpType.READ, 2, 1, arrival_us=10.0),
            IORequest(OpType.READ, 3, 1, arrival_us=15.0),
        ], name="b")
        merged = merge_traces([a, b], name="m")
        # Object-path reference: stable sort of the concatenation by
        # arrival keeps source order on ties (a's 10.0 before b's 10.0).
        reference = sorted(
            a.requests + b.requests, key=lambda r: r.arrival_us
        )
        assert merged.requests == reference
        assert [r.lpn for r in merged.requests] == [0, 2, 3, 1]

    def test_merge_deterministic_across_repeats(self):
        rng = random.Random(13)
        # Coarse timestamps force plenty of equal-arrival collisions.
        traces = [
            Trace([
                IORequest(OpType.WRITE, rng.randrange(100), 1,
                          arrival_us=float(rng.randrange(8)))
                for _ in range(40)
            ], name=f"t{i}")
            for i in range(3)
        ]
        first = merge_traces(traces).to_columnar()
        for _ in range(3):
            assert merge_traces(traces).to_columnar() == first

    def test_any_closed_loop_request_concatenates(self):
        a = Trace([IORequest(OpType.WRITE, 0, 1, arrival_us=50.0)])
        b = Trace([IORequest(OpType.WRITE, 1, 1)])
        merged = merge_traces([a, b])
        assert [r.lpn for r in merged.requests] == [0, 1]
        assert merged.requests[1].arrival_us is None


class TestBenchSecondInvocationZeroTextParse:
    """Acceptance: re-running a bench module re-parses no trace text."""

    def load_bench_conftest(self):
        spec = importlib.util.spec_from_file_location(
            "bench_conftest", REPO / "benchmarks" / "conftest.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_headline_workloads_second_build_is_all_hits(self, fresh_cache):
        bench = self.load_bench_conftest()
        cold = bench.headline_traces(footprint=2048)
        assert fresh_cache.stats.builds == len(cold)
        fresh_cache.stats.reset()
        warm = bench.headline_traces(footprint=2048)
        # Zero text parsing *and* zero generator re-runs on the second
        # invocation: every workload loads from the binary cache.
        assert fresh_cache.stats.text_parses == 0
        assert fresh_cache.stats.builds == 0
        assert fresh_cache.stats.hits == len(warm)
        for one, two in zip(cold, warm):
            assert two.to_columnar() == one.to_columnar()
