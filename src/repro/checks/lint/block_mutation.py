"""FTL003: only the flash package may mutate Block internals.

FTL schemes must drive the device exclusively through the
:class:`~repro.flash.chip.NandFlash` operation surface (program / read /
erase / invalidate), which is where latency accounting, power-fault
injection and the sanitizer hooks live.  Reaching around it - assigning
``block.is_bad`` or calling ``block.force_erase()`` from mapping code -
bypasses all three, so any such touch outside ``src/repro/flash`` is a
layering violation.
"""

from __future__ import annotations

import ast
from typing import Optional

from .base import Rule

#: Block attributes that only flash-layer code may assign.
_GUARDED_ATTRS = frozenset({
    "is_bad", "erase_count", "_write_ptr", "_valid_count",
})
#: Block mutators that only flash-layer (or test/fault) code may call.
_GUARDED_CALLS = frozenset({"force_erase", "mark_bad"})


class BlockMutationRule(Rule):
    RULE_ID = "FTL003"
    MESSAGE = "Block state may only be mutated inside repro.flash"

    @classmethod
    def applies_to(cls, scope: Optional[str]) -> bool:
        # Everywhere except the flash package itself (and its tests are
        # outside src/repro, where scope is None - still patrolled).
        return scope != "flash"

    def _check_target(self, target: ast.expr) -> None:
        if (isinstance(target, ast.Attribute)
                and target.attr in _GUARDED_ATTRS):
            self.report(
                target,
                f"assignment to Block.{target.attr} outside repro.flash; "
                "go through the NandFlash operation surface",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _GUARDED_CALLS:
            self.report(
                node,
                f".{func.attr}() call outside repro.flash; Block "
                "retirement/erasure belongs to the device layer",
            )
        self.generic_visit(node)
