"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


SMALL_DEVICE = [
    "--blocks", "96", "--pages-per-block", "16", "--page-size", "512",
    "--logical-fraction", "0.7",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.trace == "financial1"
        assert "LazyFTL" in args.schemes

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--schemes", "CFTL"])

    def test_unknown_trace_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--trace", "nonsense"])


class TestCommands:
    def test_compare_small(self, capsys):
        rc = main([
            "compare", "--trace", "random", "--requests", "300",
            "--schemes", "LazyFTL", "ideal", *SMALL_DEVICE,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LazyFTL" in out
        assert "vs theoretically optimal" in out

    def test_characterize(self, capsys):
        rc = main([
            "characterize", "--trace", "tpcc", "--requests", "500",
            *SMALL_DEVICE,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "write_ratio" in out

    def test_replay_spc(self, tmp_path, capsys):
        p = tmp_path / "t.spc"
        p.write_text("\n".join(
            f"0,{i * 8},2048,W,{i * 0.001}" for i in range(50)
        ))
        rc = main([
            "replay-spc", str(p), "--schemes", "ideal", *SMALL_DEVICE,
        ])
        assert rc == 0
        assert "replay of" in capsys.readouterr().out

    def test_replay_spc_too_big(self, tmp_path, capsys):
        p = tmp_path / "big.spc"
        # no compaction issue: compact=True densifies, so build many pages
        p.write_text("\n".join(
            f"0,{i * 8},2048,W,{i * 0.001}" for i in range(5000)
        ))
        rc = main([
            "replay-spc", str(p), "--schemes", "ideal",
            "--blocks", "24", "--pages-per-block", "16",
            "--page-size", "512", "--logical-fraction", "0.7",
        ])
        assert rc == 2
