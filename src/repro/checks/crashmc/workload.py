"""Deterministic mixed workloads for the crash model checker.

A crash workload is a flat sequence of ``(kind, lpn)`` host operations -
``"w"`` (write), ``"r"`` (read), ``"d"`` (discard/trim) - generated from a
seed so every worker process, every reproducer run and every shrinker
candidate replays byte-identical operation streams.  Write *values* are not
stored in the op list: the checker derives them as ``(lpn, op_index)``,
which makes every acknowledged value unique and self-describing (a read-back
mismatch immediately names the op that wrote the survivor).

The textual encoding (``w5.r3.d7``) keeps shrunken failing sequences small
enough to embed verbatim in a reproducer string.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

#: One host operation: ``(kind, lpn)`` with kind in {"w", "r", "d"}.
Op = Tuple[str, int]

_KINDS = ("w", "r", "d")


def mixed_ops(
    num_ops: int,
    logical_pages: int,
    seed: int,
    read_fraction: float = 0.2,
    discard_fraction: float = 0.1,
) -> Tuple[Op, ...]:
    """Generate a deterministic mixed read/write/discard workload.

    Writes dominate (they are what crash consistency is about); reads
    exercise the replay-time read-your-writes check; discards exercise the
    relaxed durability rule (post-discard reads may return old data or
    nothing).  Hot/cold skew: half the traffic hits the first quarter of
    the logical space so GC, conversion and checkpointing all engage at
    small op counts.
    """
    if num_ops < 0:
        raise ValueError("num_ops must be non-negative")
    if not 0 <= read_fraction + discard_fraction < 1:
        raise ValueError("read+discard fractions must leave room for writes")
    rng = random.Random(seed)
    hot_span = max(1, logical_pages // 4)
    ops: List[Op] = []
    for _ in range(num_ops):
        roll = rng.random()
        if roll < read_fraction:
            kind = "r"
        elif roll < read_fraction + discard_fraction:
            kind = "d"
        else:
            kind = "w"
        if rng.random() < 0.5:
            lpn = rng.randrange(hot_span)
        else:
            lpn = rng.randrange(logical_pages)
        ops.append((kind, lpn))
    return tuple(ops)


def encode_ops(ops: Sequence[Op]) -> str:
    """Render an op sequence as the compact ``w5.r3.d7`` form."""
    return ".".join(f"{kind}{lpn}" for kind, lpn in ops)


def decode_ops(text: str) -> Tuple[Op, ...]:
    """Parse the :func:`encode_ops` form back into an op sequence."""
    if not text:
        return ()
    ops: List[Op] = []
    for token in text.split("."):
        kind, body = token[:1], token[1:]
        if kind not in _KINDS or not body.isdigit():
            raise ValueError(f"malformed op token {token!r}")
        ops.append((kind, int(body)))
    return tuple(ops)
