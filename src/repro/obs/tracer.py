"""The Tracer: clock, cause stack, spans, and event fan-out.

Design contract (enforced by the overhead-guard test): **a detached tracer
costs nothing**.  Every emission site in the stack is guarded by a single
``if self._tracer is not None`` (or ``if self.tracer is not None``) branch;
no event object, no string, no function call is constructed on the
disabled path, so benchmark numbers are identical with and without the
subsystem present.

When attached, the tracer:

* keeps the **simulated clock** - the simulator sets it to each request's
  service start, and every flash op advances it by its latency, so events
  get faithful intra-request timestamps;
* keeps a **cause stack** - instrumentation pushes ``Cause.GC`` /
  ``Cause.MERGE`` / ``Cause.CONVERT`` / ``Cause.MAPPING`` around
  housekeeping work and the flash chip stamps each raw op with the
  innermost cause (default: ``host``);
* tracks **spans** (GCStart/GCEnd, MergeStart/MergeEnd, conversions) and
  computes their simulated duration;
* fans every event out to the configured sinks, to the built-in
  :class:`~repro.obs.sinks.AttributionSink`, and into the
  :class:`~repro.obs.metrics.MetricsRegistry` (per-type counters plus
  latency histograms for flash ops and host ops).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Tuple

from .events import Cause, EventType, TraceEvent
from .metrics import MetricsRegistry
from .sinks import AttributionSink, TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .latency import OpLatencyRecorder


class Tracer:
    """Collects typed events from an instrumented simulator run.

    Args:
        sinks: Extra sinks (JSONL writer, ring buffer, time-series
            collector, ...).  The attribution aggregator and metrics
            registry are built in.
        metrics: Optional externally-owned registry to record into.
        latency: Optional :class:`~repro.obs.latency.OpLatencyRecorder`;
            when attached, every event is folded into the per-op cause
            decomposition and the simulator's fences / queue delays are
            forwarded to it.
    """

    def __init__(
        self,
        sinks: Iterable[TraceSink] = (),
        metrics: Optional[MetricsRegistry] = None,
        latency: Optional["OpLatencyRecorder"] = None,
    ):
        self.sinks: List[TraceSink] = list(sinks)
        # Sinks opting into channel-wait samples (multi-channel devices
        # only emit them when striping is active) declare a
        # ``channel_wait(scheme, ts, wait_us)`` method; resolved once so
        # the per-op fan-out is a plain list walk.
        self._wait_sinks = [
            sink for sink in self.sinks if hasattr(sink, "channel_wait")
        ]
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.attribution = AttributionSink()
        self.latency = latency
        self.clock = 0.0
        self.scheme = ""
        self.enabled = True
        self._cause_stack: List[Cause] = [Cause.HOST]
        self._span_stack: List[Tuple[EventType, float]] = []
        self.events_emitted = 0

    # ------------------------------------------------------------------
    # Run / clock management (driven by the simulator)
    # ------------------------------------------------------------------
    def begin_run(self, scheme: str) -> None:
        """Start tracing a fresh scheme run: reset clock and stacks."""
        self.scheme = scheme
        self.clock = 0.0
        self._cause_stack = [Cause.HOST]
        self._span_stack = []

    def set_clock(self, now_us: float) -> None:
        self.clock = now_us

    def advance(self, dur_us: float) -> None:
        self.clock += dur_us

    def suspend(self) -> None:
        """Stop emitting (used while warm-up traces replay)."""
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    # ------------------------------------------------------------------
    # Cause stack
    # ------------------------------------------------------------------
    @property
    def current_cause(self) -> Cause:
        return self._cause_stack[-1]

    def push_cause(self, cause: Cause) -> None:
        self._cause_stack.append(cause)

    def pop_cause(self) -> Cause:
        if len(self._cause_stack) <= 1:
            raise RuntimeError("cause stack underflow")
        return self._cause_stack.pop()

    @contextmanager
    def cause(self, cause: Cause):
        """``with tracer.cause(Cause.MAPPING): ...`` convenience scope."""
        self.push_cause(cause)
        try:
            yield self
        finally:
            self.pop_cause()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        type: EventType,
        lpn: Optional[int] = None,
        ppn: Optional[int] = None,
        dur_us: float = 0.0,
        cause: Optional[Cause] = None,
        **extra: Any,
    ) -> None:
        """Record one event at the current clock/cause."""
        if not self.enabled:
            return
        event = TraceEvent(
            type=type,
            ts=self.clock,
            scheme=self.scheme,
            cause=cause if cause is not None else self._cause_stack[-1],
            lpn=lpn,
            ppn=ppn,
            dur_us=dur_us,
            extra=extra,
        )
        self.events_emitted += 1
        self.attribution.emit(event)
        if self.latency is not None:
            self.latency.observe(event)
        self.metrics.counter(f"events.{type.value}").inc()
        for sink in self.sinks:
            sink.emit(event)

    def flash_op(
        self,
        type: EventType,
        ppn: int,
        dur_us: float,
        lpn: Optional[int] = None,
    ) -> None:
        """Record a raw flash operation and advance the simulated clock.

        Called by :class:`~repro.flash.chip.NandFlash` only when a tracer
        is attached; stamps the op with the innermost cause.
        """
        if self.enabled:
            self.emit(type, lpn=lpn, ppn=ppn, dur_us=dur_us)
            self.metrics.histogram(f"flash.{type.value}_us").add(dur_us)
        self.clock += dur_us

    def host_op(self, is_write: bool, lpn: int, dur_us: float) -> None:
        """Record a completed page-granular host operation."""
        if not self.enabled:
            return
        type = EventType.HOST_WRITE if is_write else EventType.HOST_READ
        self.emit(type, lpn=lpn, dur_us=dur_us)
        self.metrics.histogram(f"host.{type.value}_us").add(dur_us)

    def host_trim(self, lpn: int, dur_us: float = 0.0) -> None:
        """Record a completed page-granular host discard/trim."""
        if not self.enabled:
            return
        self.emit(EventType.HOST_TRIM, lpn=lpn, dur_us=dur_us)
        self.metrics.histogram("host.HostTrim_us").add(dur_us)

    def op_fence(self) -> None:
        """Mark subsequent flash time as belonging to no host op.

        The simulator calls this after granting device idle time to
        background housekeeping, so the latency recorder never folds that
        work into the next host op's decomposition.
        """
        if self.enabled and self.latency is not None:
            self.latency.fence(self.scheme)

    def queue_delay(self, is_write: bool, wait_us: float) -> None:
        """Record one request's open-loop wait behind the busy device."""
        if self.enabled and self.latency is not None:
            self.latency.note_queue_delay(self.scheme, is_write, wait_us)

    def channel_wait(self, wait_us: float) -> None:
        """Record time a raw op waited on its busy parallel unit.

        Emitted by :class:`~repro.flash.parallel.ParallelNandFlash` for
        ops that started after the least-busy unit was already free -
        the time lost to stripe imbalance.  Like queueing it sits
        *outside* the per-op service decomposition (the op's traced
        ``dur_us`` is its marginal makespan contribution, which already
        absorbs the wait), so it lands in its own recorder bucket and
        window counter rather than a cause bucket.
        """
        if not self.enabled:
            return
        if self.latency is not None:
            self.latency.note_channel_wait(self.scheme, wait_us)
        for sink in self._wait_sinks:
            sink.channel_wait(self.scheme, self.clock, wait_us)

    # ------------------------------------------------------------------
    # Spans (GC / merge / convert)
    # ------------------------------------------------------------------
    def span_start(
        self,
        type: Optional[EventType],
        cause: Cause,
        **fields: Any,
    ) -> None:
        """Open a span: optionally emit a start event, push its cause."""
        if type is not None:
            self.emit(type, **fields)
        self.push_cause(cause)
        self._span_stack.append(
            (type if type is not None else EventType.CONVERT, self.clock)
        )

    def span_end(self, type: Optional[EventType], **fields: Any) -> None:
        """Close the innermost span; the end event carries its duration."""
        self.pop_cause()
        _, start = self._span_stack.pop()
        if type is not None:
            self.emit(type, dur_us=self.clock - start, **fields)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
