"""Unit tests for the synthetic and domain trace generators."""

import pytest

from repro.traces import (
    characterize,
    financial1,
    financial2,
    hot_cold,
    mixed,
    sequential,
    tpcc,
    uniform_random,
    warmup_fill,
    websearch,
    zipf,
)


FOOTPRINT = 4096


class TestDeterminism:
    @pytest.mark.parametrize("gen", [
        lambda s: uniform_random(200, FOOTPRINT, seed=s),
        lambda s: sequential(200, FOOTPRINT, seed=s),
        lambda s: hot_cold(200, FOOTPRINT, seed=s),
        lambda s: zipf(200, FOOTPRINT, seed=s),
        lambda s: mixed(200, FOOTPRINT, seed=s),
        lambda s: financial1(200, FOOTPRINT, seed=s),
        lambda s: financial2(200, FOOTPRINT, seed=s),
        lambda s: websearch(200, FOOTPRINT, seed=s),
        lambda s: tpcc(200, FOOTPRINT, seed=s),
    ])
    def test_same_seed_same_trace(self, gen):
        a, b = gen(7), gen(7)
        assert [(r.op, r.lpn, r.npages) for r in a] == \
               [(r.op, r.lpn, r.npages) for r in b]

    def test_different_seed_differs(self):
        a = uniform_random(200, FOOTPRINT, seed=1)
        b = uniform_random(200, FOOTPRINT, seed=2)
        assert [(r.lpn) for r in a] != [(r.lpn) for r in b]


class TestBounds:
    @pytest.mark.parametrize("gen", [
        lambda: uniform_random(500, FOOTPRINT, max_request_pages=4),
        lambda: sequential(500, FOOTPRINT, request_pages=8),
        lambda: hot_cold(500, FOOTPRINT, max_request_pages=4),
        lambda: zipf(500, FOOTPRINT, max_request_pages=4),
        lambda: mixed(500, FOOTPRINT),
        lambda: financial1(500, FOOTPRINT),
        lambda: websearch(500, FOOTPRINT),
        lambda: tpcc(500, FOOTPRINT),
        lambda: warmup_fill(FOOTPRINT),
    ])
    def test_all_pages_within_footprint(self, gen):
        t = gen()
        assert t.max_lpn < FOOTPRINT
        assert all(r.lpn >= 0 for r in t)

    def test_request_count(self):
        assert len(uniform_random(123, FOOTPRINT)) == 123


class TestWriteRatios:
    def test_uniform_random_write_ratio(self):
        t = uniform_random(4000, FOOTPRINT, write_ratio=0.5, seed=3)
        assert 0.45 < t.write_ratio < 0.55

    def test_financial1_is_write_heavy(self):
        t = financial1(4000, FOOTPRINT, seed=1)
        assert 0.70 < t.write_ratio < 0.84

    def test_financial2_is_read_heavy(self):
        t = financial2(4000, FOOTPRINT, seed=1)
        assert t.write_ratio < 0.30

    def test_websearch_is_nearly_all_reads(self):
        t = websearch(2000, FOOTPRINT, seed=1)
        assert t.write_ratio < 0.05

    def test_tpcc_is_mixed(self):
        t = tpcc(4000, FOOTPRINT, seed=1)
        assert 0.3 < t.write_ratio < 0.6


class TestShapes:
    def test_sequential_is_sequential(self):
        t = sequential(100, FOOTPRINT, request_pages=4)
        c = characterize(t)
        assert c["sequentiality"] > 0.9

    def test_uniform_random_is_not_sequential(self):
        t = uniform_random(1000, FOOTPRINT, seed=2)
        c = characterize(t)
        assert c["sequentiality"] < 0.05

    def test_hot_cold_concentrates_accesses(self):
        t = hot_cold(4000, FOOTPRINT, hot_fraction=0.2, hot_probability=0.8,
                     seed=5)
        hot_limit = int(FOOTPRINT * 0.2)
        hot_hits = sum(r.npages for r in t if r.lpn < hot_limit)
        assert 0.75 < hot_hits / t.page_ops < 0.85
        u = uniform_random(4000, FOOTPRINT, seed=5)
        assert characterize(t)["hot20_share"] > characterize(u)["hot20_share"]

    def test_zipf_concentrates_accesses(self):
        t = zipf(4000, FOOTPRINT, theta=0.99, seed=5)
        c = characterize(t)
        assert c["hot20_share"] > 0.6

    def test_uniform_has_no_concentration(self):
        t = uniform_random(4000, FOOTPRINT, seed=5)
        c = characterize(t)
        assert c["hot20_share"] < 0.5

    def test_warmup_covers_every_page(self):
        t = warmup_fill(FOOTPRINT)
        assert t.footprint() == FOOTPRINT
        assert t.write_ratio == 1.0

    def test_mixed_sequential_fraction(self):
        t_seq = mixed(1000, FOOTPRINT, sequential_fraction=0.95, seed=1)
        t_rnd = mixed(1000, FOOTPRINT, sequential_fraction=0.05, seed=1)
        assert characterize(t_seq)["sequentiality"] > \
               characterize(t_rnd)["sequentiality"]


class TestValidation:
    def test_bad_write_ratio(self):
        with pytest.raises(ValueError):
            uniform_random(10, FOOTPRINT, write_ratio=1.5)

    def test_bad_footprint(self):
        with pytest.raises(ValueError):
            uniform_random(10, 0)

    def test_bad_theta(self):
        with pytest.raises(ValueError):
            zipf(10, FOOTPRINT, theta=1.0)

    def test_bad_hot_fraction(self):
        with pytest.raises(ValueError):
            hot_cold(10, FOOTPRINT, hot_fraction=0.0)

    def test_negative_requests(self):
        with pytest.raises(ValueError):
            sequential(-1, FOOTPRINT)


class TestCharacterize:
    def test_empty_trace(self):
        from repro.traces import Trace
        c = characterize(Trace([]))
        assert c["requests"] == 0
        assert c["write_ratio"] == 0.0

    def test_keys_stable(self):
        c = characterize(uniform_random(50, FOOTPRINT))
        assert set(c) == {
            "requests", "page_ops", "write_ratio", "footprint_pages",
            "mean_request_pages", "sequentiality", "hot20_share",
        }
