"""Configuration of the LazyFTL scheme."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LazyConfig:
    """Tunables of LazyFTL (the paper's m_u / m_c knobs and extensions).

    Attributes:
        uba_blocks: Size of the update block area in blocks (the paper's
            ``m_u``).  All host writes land here; a larger UBA defers and
            batches more mapping commits per conversion.  Must be >= 2 so a
            full block can be converted while the frontier keeps absorbing
            writes.
        cba_blocks: Size of the cold block area in blocks (``m_c``); GC
            relocations land here.  Must be >= 2.
        gc_free_threshold: Garbage collection runs whenever the free pool
            is at or below this many blocks.
        checkpoint_interval: Write a recovery checkpoint every this many
            host page writes (0 disables periodic checkpoints; explicit
            :meth:`~repro.core.lazyftl.LazyFTL.checkpoint` calls still
            work).
        map_cache_pages: Optional RAM cache of recently used GMT pages
            (0 disables).  An *extension* beyond the paper's base design,
            used by the ablation benchmarks; the headline configuration
            keeps it off.
        wear_threshold: Static wear-leveling trigger - when the spread
            between the most- and least-erased block exceeds this, the
            coldest data block is forcibly recycled.  None disables.
        global_batching: When a conversion rewrites a GMT page, commit
            *every* UMT entry that page covers (not only the converted
            block's own entries).  On by default - this is what makes
            conversion cost amortise; the off position exists for the
            E11 ablation benchmark.
        convert_policy: How to pick the block to convert when an area is
            at capacity.  ``"fifo"`` (default) converts the oldest block;
            ``"cheapest"`` converts the block whose pending entries span
            the fewest distinct GMT pages (fewest read-modify-writes now,
            at the cost of keeping old blocks staged longer).
        checkpoint_umt: Include a UMT snapshot in checkpoints (extension).
            Checkpoints grow, but recovery resolves pre-checkpoint data
            pages from the snapshot instead of reading GMT pages, cutting
            recovery flash reads when checkpoints are fresh.
        background_gc: Run garbage collection during device idle time
            (extension; only observable under open-loop replay).  Keeps
            the free pool above ``2 x gc_free_threshold`` opportunistically
            so foreground requests stall on GC less often.
    """

    uba_blocks: int = 8
    cba_blocks: int = 4
    gc_free_threshold: int = 4
    checkpoint_interval: int = 0
    map_cache_pages: int = 0
    wear_threshold: Optional[int] = None
    global_batching: bool = True
    convert_policy: str = "fifo"
    checkpoint_umt: bool = False
    background_gc: bool = False

    def __post_init__(self) -> None:
        if self.uba_blocks < 2:
            raise ValueError("uba_blocks must be >= 2")
        if self.cba_blocks < 2:
            raise ValueError("cba_blocks must be >= 2")
        if self.gc_free_threshold < 3:
            raise ValueError("gc_free_threshold must be >= 3")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        if self.map_cache_pages < 0:
            raise ValueError("map_cache_pages must be non-negative")
        if self.wear_threshold is not None and self.wear_threshold < 1:
            raise ValueError("wear_threshold must be >= 1 or None")
        if self.convert_policy not in ("fifo", "cheapest"):
            raise ValueError("convert_policy must be 'fifo' or 'cheapest'")
