"""Flat array-backed mapping tables for the engine's hot paths.

Every FTL scheme in this reproduction keeps some logical-to-physical map.
The seed implementation used ``dict``/``list`` of ``Optional[int]``, which
costs a hash probe (or a 28-byte boxed int) per entry and per access.
:class:`MapTable` replaces them with a single flat ``array('q')`` whose
sentinel ``-1`` means *unmapped*: entries are machine words, lookups are a
C-level index, and the table's memory is one contiguous buffer.

Two access levels:

* dict/list-compatible wrappers (``get`` / ``pop`` / ``[]`` / iteration /
  ``items``) that speak ``Optional[int]`` so existing call sites and tests
  keep working unchanged;
* the ``raw`` array itself for hot loops, which read/write ``-1``
  directly and skip the ``None`` boxing entirely.

The ``ftlint`` rule FTL007 steers new schemes toward this module instead
of fresh ``dict``-based maps.

:class:`LruCache` is the companion bounded cache (used by the GMT
ablation cache in :mod:`repro.core.mapping`): an explicit OrderedDict
LRU that only pays ``move_to_end`` on a *hit* - a fresh insert already
lands at the MRU end, so the miss path is a plain insert plus bounded
eviction.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from typing import Iterable, Iterator, List, Optional, Tuple

#: Sentinel stored in :attr:`MapTable.raw` for an unmapped entry.
UNMAPPED = -1


class MapTable:
    """Fixed-capacity logical->physical map over ``array('q')``.

    ``table[i]`` / ``get`` / ``pop`` translate the ``-1`` sentinel to
    ``None`` (and back on assignment), so the table drops into code
    written against ``Dict[int, int]`` or ``List[Optional[int]]``.
    ``len(table)`` is the capacity (list semantics); use
    :meth:`mapped_count` for the number of live entries.

    Hot paths should bind ``table.raw`` once and test ``< 0`` instead of
    ``is None``.
    """

    __slots__ = ("raw",)

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("size must be non-negative")
        self.raw: "array[int]" = array("q", (UNMAPPED,)) * size

    def __len__(self) -> int:
        return len(self.raw)

    def __getitem__(self, index: int) -> Optional[int]:
        value = self.raw[index]
        return value if value >= 0 else None

    def __setitem__(self, index: int, value: Optional[int]) -> None:
        if value is None:
            self.raw[index] = UNMAPPED
        elif value < 0:
            raise ValueError("mapped values must be non-negative")
        else:
            self.raw[index] = value

    def __contains__(self, index: int) -> bool:
        return 0 <= index < len(self.raw) and self.raw[index] >= 0

    def __iter__(self) -> Iterator[Optional[int]]:
        """Iterate slot values in index order (``None`` for unmapped)."""
        for value in self.raw:
            yield value if value >= 0 else None

    def get(self, index: int, default: Optional[int] = None) -> Optional[int]:
        """Dict-style lookup: ``default`` when out of range or unmapped."""
        if 0 <= index < len(self.raw):
            value = self.raw[index]
            if value >= 0:
                return value
        return default

    def pop(self, index: int, default: Optional[int] = None) -> Optional[int]:
        """Remove and return an entry (``default`` when absent)."""
        raw = self.raw
        if 0 <= index < len(raw):
            value = raw[index]
            if value >= 0:
                raw[index] = UNMAPPED
                return value
        return default

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(index, value)`` for every mapped entry, ascending."""
        for index, value in enumerate(self.raw):
            if value >= 0:
                yield index, value

    def set_many(self, pairs: "Iterable[Tuple[int, int]]") -> None:
        """Bulk assignment of ``(index, ppn)`` pairs.

        The batch-replay executors resolve an epoch's final mapping per
        lpn (last write wins) and commit the whole set here in one pass
        over the raw array.  Values must be real mappings (``>= 0``);
        unmapping stays per-index via ``table[i] = None``.
        """
        raw = self.raw
        for index, value in pairs:
            if value < 0:
                raise ValueError("mapped values must be non-negative")
            raw[index] = value

    def mapped_count(self) -> int:
        """Number of live (mapped) entries."""
        return sum(1 for value in self.raw if value >= 0)

    def clear(self) -> None:
        """Unmap every entry, keeping capacity (and ``raw`` identity)."""
        self.raw[:] = array("q", (UNMAPPED,)) * len(self.raw)

    def snapshot(self) -> List[Optional[int]]:
        """Checkpoint-friendly copy in the legacy list-of-Optional form."""
        return [value if value >= 0 else None for value in self.raw]

    def restore(self, entries: List[Optional[int]]) -> None:
        """Replace contents from a :meth:`snapshot`-shaped list."""
        if len(entries) != len(self.raw):
            raise ValueError(
                f"size mismatch: {len(entries)} != {len(self.raw)}"
            )
        self.raw[:] = array(
            "q", (UNMAPPED if e is None else e for e in entries)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MapTable(size={len(self.raw)}, mapped={self.mapped_count()})"


class LruCache:
    """Bounded LRU map with an allocation-free miss path.

    Recency bookkeeping costs exactly one ``move_to_end`` and only on a
    hit (or an overwrite of an existing key): a fresh insert already sits
    at the MRU end of the underlying ``OrderedDict``, so re-inserting or
    re-moving it - what the seed GMT cache did - is pure overhead.
    ``capacity <= 0`` disables storage entirely (every ``get`` misses),
    which is how the off-by-default GMT ablation cache behaves.
    """

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: "OrderedDict[int, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def get(self, key: int):
        """Return the cached value (marking it most-recent) or None."""
        data = self._data
        value = data.get(key)
        if value is not None:
            data.move_to_end(key)
        return value

    def put(self, key: int, value) -> None:
        """Insert/overwrite ``key`` as most-recent; evict past capacity."""
        if self.capacity <= 0:
            return
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        data[key] = value
        while len(data) > self.capacity:
            data.popitem(last=False)

    def touch_many(self, keys: Iterable[int]) -> None:
        """Replay a sequence of hits' recency updates in access order.

        Equivalent to the ``move_to_end`` that :meth:`get` performs on
        each hit, applied in the same order - the batch-replay executors
        collect an epoch's cache hits and commit the LRU reordering here
        in one pass.  Unknown keys are ignored (a miss moves nothing).
        """
        data = self._data
        move_to_end = data.move_to_end
        for key in keys:
            if key in data:
                move_to_end(key)

    def keys(self):
        """Keys in eviction order (least-recent first)."""
        return self._data.keys()

    def clear(self) -> None:
        self._data.clear()
