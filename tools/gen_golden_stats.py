#!/usr/bin/env python3
"""Regenerate the golden engine-statistics snapshot.

Runs the canonical golden workload (see :mod:`repro.sim.golden`) through
every FTL scheme and writes the digests to
``tests/golden/engine_stats.json``.  ``tests/test_golden_stats.py``
compares the live engine against this file bit-for-bit, so regenerate it
ONLY when a behaviour change is intentional and understood - never to
"fix" a failing golden test after a refactor that was supposed to be
statistics-neutral.

Run:  PYTHONPATH=src python tools/gen_golden_stats.py
"""

from __future__ import annotations

import json
import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.sim.golden import (  # noqa: E402
    collect_golden_digests,
    collect_golden_digests_4ch,
)

GOLDEN_PATH = _REPO_ROOT / "tests" / "golden" / "engine_stats.json"
GOLDEN_4CH_PATH = _REPO_ROOT / "tests" / "golden" / "engine_stats_4ch.json"


def _write(path: pathlib.Path, digests: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(digests, stream, indent=1, sort_keys=True)
        stream.write("\n")
    print(f"wrote {len(digests)} digests to {path}")


def main() -> int:
    # Two snapshot files on purpose: the serial one keeps its exact
    # key set (its test asserts key-set equality, so adding 4-channel
    # digests there would break the seed gate), the 4-channel one pins
    # the striped/overlapped engine for the schemes that opt in.
    _write(GOLDEN_PATH, collect_golden_digests())
    _write(GOLDEN_4CH_PATH, collect_golden_digests_4ch())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
