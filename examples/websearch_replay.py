"""Search-engine scenario: a read-dominant Websearch-like workload.

Reads exercise the translation-fetch path: the ideal FTL answers from RAM,
DFTL from its CMT (missing to flash), LazyFTL from the UMT/GMT.  With an
SPC-format trace file (e.g. the UMass ``WebSearch1.spc``) as argument the
real trace is replayed instead of the synthetic equivalent.

Run:  python examples/websearch_replay.py [trace.spc]
"""

import sys

from repro.analysis import COMPARISON_HEADERS, comparison_rows
from repro.sim import HEADLINE_DEVICE, compare_schemes
from repro.sim.report import format_table
from repro.traces import characterize, parse_spc_file, websearch


def load_trace(argv):
    if len(argv) > 1:
        print(f"replaying real SPC trace {argv[1]}")
        return parse_spc_file(
            argv[1],
            page_size=HEADLINE_DEVICE.page_size,
            max_requests=50000,
        )
    footprint = int(HEADLINE_DEVICE.logical_pages * 0.9)
    return websearch(10000, footprint_pages=footprint, seed=3)


def main() -> None:
    trace = load_trace(sys.argv)
    c = characterize(trace)
    print(f"workload: {trace.name} - {c['requests']} requests, "
          f"{c['write_ratio']:.1%} writes, mean request "
          f"{c['mean_request_pages']:.1f} pages\n")

    results = compare_schemes(
        trace,
        schemes=("DFTL", "LazyFTL", "ideal"),
        device=HEADLINE_DEVICE,
    )
    print(format_table(COMPARISON_HEADERS, comparison_rows(results),
                       title="Websearch-like read-heavy workload"))

    print("\nper-read translation overhead (mapping-page reads / host reads):")
    for scheme in ("DFTL", "LazyFTL"):
        r = results[scheme]
        ratio = r.ftl_stats.map_reads / max(1, r.ftl_stats.host_reads)
        print(f"  {scheme:8s} {ratio:5.2f}")


if __name__ == "__main__":
    main()
