"""Full-state mapping audits: the FTL-level half of flashsan.

Where :class:`~repro.checks.flashsan.SanitizedNandFlash` checks each raw
operation as it happens, the auditors here inspect a *quiescent* FTL and
verify the global invariants that back the paper's claims:

* **Ownership** - at most one live logical owner per physical page, and
  every mapping points at a VALID page whose OOB reverse mapping agrees.
* **Counter integrity** - each block's valid count / write pointer match a
  recount of its page states (catches out-of-band ``Block`` mutation).
* **LazyFTL** - GTD/GMT/UMT mutual consistency, every stale-but-valid page
  is covered by a pending UMT entry (deferred invalidation is *tracked*
  laziness, never a leak), and the zero-merge headline invariant.
* **DFTL** - CMT/translation-page consistency (clean entries mirror flash,
  dirty entries point at live data) and GTD/translation-page agreement.

Audits are side-effect free: they read RAM tables and page state directly
and never issue device operations, so they can run mid-benchmark without
perturbing latencies or statistics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.lazyftl import LazyFTL
from ..flash.chip import NandFlash
from ..flash.oob import PageKind
from ..ftl.base import FlashTranslationLayer
from ..ftl.dftl import DftlFTL
from .report import AuditReport, Violation, ViolationKind


class _Auditor:
    """Shared bookkeeping for one audit pass."""

    def __init__(self, ftl: FlashTranslationLayer):
        self.ftl = ftl
        self.flash: NandFlash = ftl.flash
        self.report = AuditReport(scheme=ftl.name)

    def check(self) -> None:
        self.report.checks_run += 1

    def fail(
        self,
        kind: ViolationKind,
        message: str,
        lpn: Optional[int] = None,
        ppn: Optional[int] = None,
        pbn: Optional[int] = None,
    ) -> None:
        self.report.violations.append(Violation(
            kind=kind, message=message, scheme=self.ftl.name,
            lpn=lpn, ppn=ppn, pbn=pbn,
        ))

    # ------------------------------------------------------------------
    # Generic checks
    # ------------------------------------------------------------------
    def audit_block_counters(self) -> None:
        """Recount page states against each block's cached counters."""
        sequential = self.flash.enforce_sequential
        for block in self.flash.blocks:
            self.check()
            valid = sum(1 for p in block.pages if p.is_valid)
            if valid != block.valid_count:
                self.fail(
                    ViolationKind.COUNTER_DRIFT,
                    f"block {block.index} caches valid_count="
                    f"{block.valid_count} but holds {valid} valid page(s)",
                    pbn=block.index,
                )
            programmed = [
                o for o, p in enumerate(block.pages) if not p.is_free
            ]
            if programmed and max(programmed) >= block.write_ptr:
                self.fail(
                    ViolationKind.COUNTER_DRIFT,
                    f"block {block.index} has a programmed page at offset "
                    f"{max(programmed)} beyond its write pointer "
                    f"{block.write_ptr}",
                    pbn=block.index,
                )
            if sequential:
                free_below = [
                    o for o in range(block.write_ptr)
                    if block.pages[o].is_free
                ]
                if free_below:
                    self.fail(
                        ViolationKind.COUNTER_DRIFT,
                        f"block {block.index} has free page(s) at "
                        f"{free_below[:8]} below the write pointer on a "
                        "sequential-program device",
                        pbn=block.index,
                    )

    def audit_oob_reverse_mappings(self) -> None:
        """Every valid data page's OOB lpn must be inside logical space."""
        logical = self.ftl.logical_pages
        for block in self.flash.blocks:
            for offset, page in enumerate(block.pages):
                if not page.is_valid or page.oob is None:
                    continue
                if page.oob.kind is not PageKind.DATA:
                    continue
                self.check()
                if not 0 <= page.oob.lpn < logical:
                    self.fail(
                        ViolationKind.OOB_MISMATCH,
                        f"valid data page (block {block.index}, offset "
                        f"{offset}) claims out-of-range lpn {page.oob.lpn}",
                        pbn=block.index, lpn=page.oob.lpn,
                    )

    def valid_data_owners(self) -> Dict[int, List[int]]:
        """lpn -> ppns of all VALID data pages claiming it (via OOB)."""
        owners: Dict[int, List[int]] = {}
        geometry = self.flash.geometry
        for block in self.flash.blocks:
            for offset, page in enumerate(block.pages):
                if (
                    page.is_valid
                    and page.oob is not None
                    and page.oob.kind is PageKind.DATA
                ):
                    owners.setdefault(page.oob.lpn, []).append(
                        geometry.ppn_of(block.index, offset)
                    )
        return owners

    def audit_unique_ownership(self) -> None:
        """Eager-invalidation schemes: one valid copy per logical page."""
        for lpn, ppns in sorted(self.valid_data_owners().items()):
            self.check()
            if len(ppns) > 1:
                self.fail(
                    ViolationKind.MULTI_OWNER,
                    f"lpn {lpn} has {len(ppns)} valid physical copies "
                    f"(ppns {sorted(ppns)[:8]}); stale copies were never "
                    "invalidated",
                    lpn=lpn,
                )

    def check_data_page(self, lpn: int, ppn: int, source: str) -> bool:
        """A mapping entry must point at a VALID data page owning ``lpn``."""
        self.check()
        pbn, offset = self.flash.geometry.split_ppn(ppn)
        page = self.flash.blocks[pbn].pages[offset]
        if not page.is_valid:
            self.fail(
                ViolationKind.DANGLING_MAPPING,
                f"{source} maps lpn {lpn} to ppn {ppn} whose page is "
                f"{page.state.value}",
                lpn=lpn, ppn=ppn, pbn=pbn,
            )
            return False
        if page.oob is None or page.oob.kind is not PageKind.DATA:
            self.fail(
                ViolationKind.DANGLING_MAPPING,
                f"{source} maps lpn {lpn} to ppn {ppn} which is not a "
                "data page",
                lpn=lpn, ppn=ppn, pbn=pbn,
            )
            return False
        if page.oob.lpn != lpn:
            self.fail(
                ViolationKind.OOB_MISMATCH,
                f"{source} maps lpn {lpn} to ppn {ppn} but the page's OOB "
                f"claims lpn {page.oob.lpn}",
                lpn=lpn, ppn=ppn, pbn=pbn,
            )
            return False
        return True

    def check_mapping_page(self, tvpn: int, tppn: int, source: str) -> bool:
        """A directory entry must point at a VALID mapping page."""
        self.check()
        pbn, offset = self.flash.geometry.split_ppn(tppn)
        page = self.flash.blocks[pbn].pages[offset]
        if not page.is_valid or page.oob is None \
                or page.oob.kind is not PageKind.MAPPING:
            state = page.state.value if page.oob is None \
                else f"{page.state.value} {page.oob.kind.value}"
            self.fail(
                ViolationKind.GMT_INCONSISTENT,
                f"{source} locates translation page {tvpn} at ppn {tppn} "
                f"which is a {state} page",
                lpn=tvpn, ppn=tppn, pbn=pbn,
            )
            return False
        if page.oob.lpn != tvpn:
            self.fail(
                ViolationKind.GMT_INCONSISTENT,
                f"{source} locates translation page {tvpn} at ppn {tppn} "
                f"whose OOB claims tvpn {page.oob.lpn}",
                lpn=tvpn, ppn=tppn, pbn=pbn,
            )
            return False
        return True

    def page_content(self, ppn: int) -> Any:
        """Raw page payload, bypassing the device (audit is free)."""
        pbn, offset = self.flash.geometry.split_ppn(ppn)
        return self.flash.blocks[pbn].pages[offset].data


def _audit_lazyftl(a: _Auditor, ftl: LazyFTL) -> None:
    """GTD/GMT/UMT mutual consistency + the zero-merge invariant."""
    # 1. The headline claim: LazyFTL never merges.
    a.check()
    if ftl.stats.merges_total != 0:
        a.fail(
            ViolationKind.LAZY_MERGE,
            f"LazyFTL recorded {ftl.stats.merges_total} merge operation(s);"
            " the paper's zero-merge invariant is broken",
        )
    staging = set(ftl.uba_blocks) | set(ftl.cba_blocks)
    maps = ftl.mapping_store
    entries_per_page = maps.entries_per_page
    # 2. Every UMT entry points at a live data page inside the UBA/CBA.
    resolved: Dict[int, int] = {}
    for lpn, entry in ftl.umt.items():
        if a.check_data_page(lpn, entry.ppn, "UMT"):
            pbn, _ = a.flash.geometry.split_ppn(entry.ppn)
            a.check()
            if pbn not in staging:
                a.fail(
                    ViolationKind.UMT_INCONSISTENT,
                    f"UMT entry for lpn {lpn} points into block {pbn} "
                    "which is in neither the update nor the cold area "
                    "(deferred entries must live in UBA/CBA)",
                    lpn=lpn, ppn=entry.ppn, pbn=pbn,
                )
        resolved[lpn] = entry.ppn
    # 3. GTD entries locate live GMT pages whose OOB names them back.
    gmt_pages: Dict[int, int] = {}
    for tvpn in range(len(maps.gtd)):
        tppn = maps.gtd.get(tvpn)
        if tppn is None:
            continue
        if a.check_mapping_page(tvpn, tppn, "GTD"):
            gmt_pages[tvpn] = tppn
    # 4. Resolve every logical page the way a read would (UMT wins, GMT
    #    otherwise); committed mappings must be exact.
    for tvpn, tppn in gmt_pages.items():
        content = a.page_content(tppn)
        base = tvpn * entries_per_page
        for idx, ppn in enumerate(content):
            lpn = base + idx
            if ppn is None or lpn >= ftl.logical_pages:
                continue
            if lpn in resolved:
                continue  # GMT value deliberately stale; UMT supersedes
            if a.check_data_page(lpn, ppn, f"GMT page {tvpn}"):
                resolved[lpn] = ppn
    # 5. Ownership: no physical page serves two logical pages.
    by_ppn: Dict[int, List[int]] = {}
    for lpn, ppn in resolved.items():
        by_ppn.setdefault(ppn, []).append(lpn)
    for ppn, lpns in sorted(by_ppn.items()):
        a.check()
        if len(lpns) > 1:
            a.fail(
                ViolationKind.MULTI_OWNER,
                f"physical page {ppn} is the mapped target of "
                f"{len(lpns)} logical pages ({sorted(lpns)[:8]})",
                ppn=ppn,
            )
    # 6. Laziness is tracked, never leaked: a valid data page that is not
    #    the resolved copy of its lpn must have a pending UMT entry that
    #    supersedes it (it will be invalidated at commit time).
    for lpn, ppns in sorted(a.valid_data_owners().items()):
        for ppn in ppns:
            a.check()
            if resolved.get(lpn) == ppn:
                continue
            if ftl.umt.get(lpn) is None:
                a.fail(
                    ViolationKind.GMT_INCONSISTENT,
                    f"valid data page at ppn {ppn} holds lpn {lpn} but is "
                    "neither the mapped copy nor superseded by a pending "
                    "UMT entry - deferred invalidation leaked it",
                    lpn=lpn, ppn=ppn,
                )


def _audit_dftl(a: _Auditor, ftl: DftlFTL) -> None:
    """CMT/translation-page consistency and GTD agreement."""
    entries_per_page = ftl.entries_per_page
    # 1. GTD entries locate live translation pages.
    tpages: Dict[int, int] = {}
    for tvpn in range(ftl.num_tvpns):
        tppn = ftl._gtd[tvpn]
        if tppn is None:
            continue
        if a.check_mapping_page(tvpn, tppn, "GTD"):
            tpages[tvpn] = tppn
    # 2. CMT entries: clean ones mirror flash, dirty ones point at live
    #    data that flash has not caught up with yet.
    resolved: Dict[int, Optional[int]] = {}
    for lpn, entry in ftl._cmt.items():
        tvpn = lpn // entries_per_page
        if entry.ppn is not None:
            a.check_data_page(lpn, entry.ppn, "CMT")
        if not entry.dirty:
            a.check()
            tppn = tpages.get(tvpn)
            flash_ppn = None
            if tppn is not None:
                flash_ppn = a.page_content(tppn)[lpn % entries_per_page]
            if flash_ppn != entry.ppn:
                a.fail(
                    ViolationKind.CMT_INCONSISTENT,
                    f"clean CMT entry for lpn {lpn} holds ppn {entry.ppn} "
                    f"but translation page {tvpn} holds {flash_ppn}",
                    lpn=lpn, ppn=entry.ppn,
                )
        resolved[lpn] = entry.ppn
    # 3. Resolve every logical page (CMT wins, translation page otherwise)
    #    and verify unique ownership.
    for tvpn, tppn in tpages.items():
        content = a.page_content(tppn)
        base = tvpn * entries_per_page
        for idx, ppn in enumerate(content):
            lpn = base + idx
            if ppn is None or lpn >= ftl.logical_pages or lpn in resolved:
                continue
            if a.check_data_page(lpn, ppn, f"translation page {tvpn}"):
                resolved[lpn] = ppn
    by_ppn: Dict[int, List[int]] = {}
    for lpn, ppn in resolved.items():
        if ppn is not None:
            by_ppn.setdefault(ppn, []).append(lpn)
    for ppn, lpns in sorted(by_ppn.items()):
        a.check()
        if len(lpns) > 1:
            a.fail(
                ViolationKind.MULTI_OWNER,
                f"physical page {ppn} is the mapped target of "
                f"{len(lpns)} logical pages ({sorted(lpns)[:8]})",
                ppn=ppn,
            )


def audit_ftl(ftl: FlashTranslationLayer) -> AuditReport:
    """Audit a quiescent FTL; returns the structured report.

    Generic invariants run for every scheme; LazyFTL and DFTL additionally
    get their scheme-specific mapping-consistency audits.  Schemes with
    eager invalidation (everything except LazyFTL) are held to the strict
    one-valid-copy-per-lpn rule.
    """
    auditor = _Auditor(ftl)
    auditor.audit_block_counters()
    auditor.audit_oob_reverse_mappings()
    if isinstance(ftl, LazyFTL):
        _audit_lazyftl(auditor, ftl)
    else:
        auditor.audit_unique_ownership()
        if isinstance(ftl, DftlFTL):
            _audit_dftl(auditor, ftl)
    return auditor.report
