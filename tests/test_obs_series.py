"""Unit tests for the windowed time-series collector: window bucketing,
gap filling, counted ring eviction, metric derivation, and the JSONL /
Prometheus export formats."""

import io
import json

import pytest

from repro.obs import Cause, EventType, TraceEvent
from repro.obs.series import DEFAULT_WINDOW_US, SeriesCollector

pytestmark = pytest.mark.obs


def _event(type, ts, dur=0.0, cause=Cause.HOST, scheme="X", ppn=None):
    return TraceEvent(type=type, ts=ts, scheme=scheme, cause=cause,
                      lpn=0, ppn=ppn, dur_us=dur)


def _fill(collector, scheme="X"):
    """One write (program 200us) at t=0 and one at t=1.5 windows."""
    w = collector.window_us
    collector.emit(_event(EventType.PAGE_PROGRAM, 10.0, 200.0,
                          scheme=scheme))
    collector.emit(_event(EventType.HOST_WRITE, 210.0, 200.0,
                          scheme=scheme))
    collector.emit(_event(EventType.PAGE_PROGRAM, 1.5 * w, 200.0,
                          scheme=scheme))
    collector.emit(_event(EventType.HOST_WRITE, 1.5 * w + 200, 200.0,
                          scheme=scheme))


class TestWindowing:
    def test_events_land_in_their_window(self):
        collector = SeriesCollector(window_us=1000.0)
        _fill(collector)
        windows = collector.windows("X")
        assert [w["window"] for w in windows] == [0, 1]
        assert windows[0]["host_writes"] == 1
        assert windows[1]["host_writes"] == 1
        assert windows[0]["t_us"] == 0.0
        assert windows[1]["t_us"] == 1000.0

    def test_gap_windows_are_materialized_empty(self):
        collector = SeriesCollector(window_us=100.0)
        collector.emit(_event(EventType.HOST_WRITE, 50.0))
        collector.emit(_event(EventType.HOST_WRITE, 350.0))
        windows = collector.windows("X")
        assert [w["window"] for w in windows] == [0, 1, 2, 3]
        assert windows[1]["host_ops"] == 0
        assert windows[2]["host_ops"] == 0

    def test_ring_eviction_is_counted(self):
        collector = SeriesCollector(window_us=100.0, capacity=2)
        for i in range(6):
            collector.emit(_event(EventType.HOST_WRITE, i * 100.0 + 1))
        # 5 closed windows into a 2-slot ring: 3 evicted, all counted.
        assert collector.windows_dropped("X") == 3
        retained = collector.windows("X")
        assert [w["window"] for w in retained] == [3, 4, 5]

    def test_unknown_scheme_is_empty(self):
        collector = SeriesCollector()
        assert collector.windows("nope") == []
        assert collector.windows_dropped("nope") == 0
        assert collector.series("nope", "waf") == []


class TestMetrics:
    def test_ops_per_sec(self):
        collector = SeriesCollector(window_us=1_000_000.0)  # 1 s windows
        for i in range(50):
            collector.emit(_event(EventType.HOST_WRITE, float(i)))
        (window,) = collector.windows("X")
        assert window["ops_per_sec"] == pytest.approx(50.0)

    def test_waf_counts_all_programs_over_host_writes(self):
        collector = SeriesCollector(window_us=1000.0)
        collector.emit(_event(EventType.PAGE_PROGRAM, 0.0, 200.0))
        collector.emit(_event(EventType.PAGE_PROGRAM, 0.0, 200.0,
                              cause=Cause.GC))
        collector.emit(_event(EventType.HOST_WRITE, 200.0, 200.0))
        (window,) = collector.windows("X")
        assert window["waf"] == pytest.approx(2.0)
        assert window["gc_debt_pages"] == 1

    def test_waf_none_without_host_writes(self):
        collector = SeriesCollector(window_us=1000.0)
        collector.emit(_event(EventType.HOST_READ, 0.0))
        (window,) = collector.windows("X")
        assert window["waf"] is None

    def test_map_hit_rate(self):
        collector = SeriesCollector(window_us=1000.0)
        for _ in range(4):
            collector.emit(_event(EventType.HOST_READ, 0.0))
        collector.emit(_event(EventType.MAP_READ, 0.0,
                              cause=Cause.MAPPING))
        (window,) = collector.windows("X")
        assert window["map_hit_rate"] == pytest.approx(0.75)

    def test_stall_fractions_sum_to_one(self):
        collector = SeriesCollector(window_us=1000.0)
        collector.emit(_event(EventType.PAGE_PROGRAM, 0.0, 300.0))
        collector.emit(_event(EventType.PAGE_PROGRAM, 0.0, 100.0,
                              cause=Cause.GC))
        (window,) = collector.windows("X")
        fractions = window["stall_fractions"]
        assert fractions["host"] == pytest.approx(0.75)
        assert fractions["gc"] == pytest.approx(0.25)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_erase_variance_exact_with_num_blocks(self):
        collector = SeriesCollector(window_us=1000.0, num_blocks=4)
        # Block 0 erased twice, others never: counts (2,0,0,0).
        collector.emit(_event(EventType.BLOCK_ERASE, 0.0, 2000.0,
                              cause=Cause.GC, ppn=0))
        collector.emit(_event(EventType.BLOCK_ERASE, 10.0, 2000.0,
                              cause=Cause.GC, ppn=0))
        (window,) = collector.windows("X")
        # mean 0.5; variance = (4 + 0*3)/4 - 0.25 = 0.75
        assert window["erase_variance"] == pytest.approx(0.75)

    def test_schemes_are_independent(self):
        collector = SeriesCollector(window_us=1000.0)
        _fill(collector, scheme="A")
        _fill(collector, scheme="B")
        assert collector.schemes() == ["A", "B"]
        assert len(collector.windows("A")) == 2


class TestExport:
    def test_jsonl_round_trip(self):
        collector = SeriesCollector(window_us=1000.0)
        _fill(collector)
        stream = io.StringIO()
        written = collector.to_jsonl(stream, scheme="X")
        lines = [json.loads(l) for l in
                 stream.getvalue().strip().splitlines()]
        assert written == len(lines) == 2
        assert all(l["scheme"] == "X" for l in lines)
        assert lines[0]["schema"] == 1
        assert lines[0]["host_writes"] == 1

    def test_prometheus_exposition(self):
        collector = SeriesCollector(window_us=1000.0)
        _fill(collector)
        text = collector.to_prometheus()
        assert 'repro_ops_per_sec{scheme="X"}' in text
        assert 'repro_waf{scheme="X"} 1' in text
        assert ('repro_flash_time_us_total{scheme="X",cause="host"} 400'
                in text)
        assert 'repro_windows_dropped_total{scheme="X"} 0' in text
        # Exposition format: every non-comment line is "name value".
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert len(line.split(" ")) == 2

    def test_snapshot_shape(self):
        collector = SeriesCollector(window_us=1000.0)
        _fill(collector)
        snapshot = collector.snapshot("X")
        assert snapshot["window_us"] == 1000.0
        assert snapshot["windows_dropped"] == 0
        assert len(snapshot["windows"]) == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SeriesCollector(window_us=0.0)
        with pytest.raises(ValueError):
            SeriesCollector(capacity=0)
        assert SeriesCollector().window_us == DEFAULT_WINDOW_US
