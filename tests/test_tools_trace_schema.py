"""Tests for tools/check_trace_schema.py (the CI trace validator)."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.obs import JsonlSink, Tracer
from repro.sim import DeviceSpec, run_scheme
from repro.traces import uniform_random

pytestmark = pytest.mark.obs

TOOL = str(
    pathlib.Path(__file__).resolve().parent.parent
    / "tools" / "check_trace_schema.py"
)


def run_tool(*args):
    return subprocess.run(
        [sys.executable, TOOL, *args],
        capture_output=True, text=True, timeout=120,
    )


def write_real_trace(path):
    device = DeviceSpec(num_blocks=96, pages_per_block=16, page_size=512,
                        logical_fraction=0.7)
    tracer = Tracer(sinks=[JsonlSink(str(path))])
    run_scheme(
        "LazyFTL",
        uniform_random(400, int(device.logical_pages * 0.9),
                       write_ratio=0.9, seed=3),
        device=device, tracer=tracer,
    )
    tracer.close()


class TestCheckTraceSchema:
    def test_real_trace_is_clean(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        write_real_trace(path)
        proc = run_tool(str(path))
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_violations_fail(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        records = [
            {"type": "Bogus", "ts": 0, "scheme": "x", "cause": "host"},
            {"type": "PageRead", "ts": 5, "scheme": "x", "cause": "host",
             "ppn": 1},                            # flash op without dur
            {"type": "HostRead", "ts": 1, "scheme": "x", "cause": "host"},
            {"type": "GCEnd", "ts": 2, "scheme": "x", "cause": "gc"},
            {"type": "MergeStart", "ts": 3, "scheme": "x",
             "cause": "merge"},                    # never closed
        ]
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\nnot json\n"
        )
        proc = run_tool(str(path))
        assert proc.returncode == 1
        err = proc.stderr
        assert "unparseable record" in err
        assert "without dur_us" in err
        assert "timestamp went backwards" in err
        assert "GCEnd without a matching start" in err
        assert "unclosed MergeStart" in err

    def test_usage_errors(self, tmp_path):
        assert run_tool().returncode == 2
        assert run_tool(str(tmp_path / "missing.jsonl")).returncode == 2


class TestMetaRecords:
    """Ring-buffer metadata lines: skipped by event checks, validated
    for counter sanity."""

    def test_clean_ring_meta_passes(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in [
            {"meta": "ring", "schema": 1, "capacity": 64,
             "events_seen": 100, "dropped": 36},
            {"type": "PageRead", "ts": 1, "scheme": "x", "cause": "host",
             "ppn": 1, "dur_us": 25.0},
        ]) + "\n")
        proc = run_tool(str(path))
        assert proc.returncode == 0, proc.stderr

    def test_bad_meta_counters_fail(self, tmp_path):
        path = tmp_path / "bad_meta.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in [
            {"meta": "ring", "schema": 1, "capacity": -1,
             "events_seen": 10, "dropped": 99},
            {"meta": 7},
        ]) + "\n")
        proc = run_tool(str(path))
        assert proc.returncode == 1
        err = proc.stderr
        assert "bad 'capacity'" in err
        assert "claims 99 dropped out of only 10 seen" in err
        assert "non-string kind" in err

    def test_real_ring_dump_is_clean(self, tmp_path):
        from repro.obs import RingBufferSink

        device = DeviceSpec(num_blocks=96, pages_per_block=16,
                            page_size=512, logical_fraction=0.7)
        ring = RingBufferSink(64)
        tracer = Tracer(sinks=[ring])
        run_scheme(
            "LazyFTL",
            uniform_random(300, int(device.logical_pages * 0.9),
                           write_ratio=0.9, seed=7),
            device=device, tracer=tracer,
        )
        path = tmp_path / "ring_dump.jsonl"
        ring.dump(str(path))
        assert ring.dropped > 0  # 300 requests overflow a 64-slot ring
        proc = run_tool(str(path))
        assert proc.returncode == 0, proc.stderr


class TestSnapshotValidation:
    """The same tool validates report snapshots (auto-detected)."""

    @staticmethod
    def make_snapshot(tmp_path):
        from repro.obs.report import collect_report, save_snapshot

        device = DeviceSpec(num_blocks=96, pages_per_block=16,
                            page_size=512, logical_fraction=0.7)
        snapshot, _, _ = collect_report(
            "LazyFTL",
            uniform_random(400, int(device.logical_pages * 0.8),
                           write_ratio=0.8, seed=5),
            device=device,
        )
        path = tmp_path / "snap.json"
        save_snapshot(snapshot, str(path))
        return path, snapshot

    def test_valid_snapshot_passes(self, tmp_path):
        path, _ = self.make_snapshot(tmp_path)
        proc = run_tool(str(path))
        assert proc.returncode == 0, proc.stderr
        assert "snapshot OK" in proc.stdout

    def test_broken_snapshot_fails(self, tmp_path):
        path, snapshot = self.make_snapshot(tmp_path)
        snapshot["latency"]["classes"]["overall"]["p99_us"] = -1
        snapshot["latency"]["classes"]["read"]["attributed_fraction"] = 2.0
        path.write_text(json.dumps(snapshot))
        proc = run_tool(str(path))
        assert proc.returncode == 1
        assert "not monotonic" in proc.stderr
        assert "attributed_fraction" in proc.stderr


class TestCauseStackConsistency:
    """Flash-op causes must agree with the open GC/merge spans."""

    @staticmethod
    def write(path, records):
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")

    def test_gc_cause_outside_gc_span(self, tmp_path):
        path = tmp_path / "gc_leak.jsonl"
        self.write(path, [
            {"type": "PageRead", "ts": 1, "scheme": "x", "cause": "gc",
             "ppn": 4, "dur_us": 25.0},
        ])
        proc = run_tool(str(path))
        assert proc.returncode == 1
        assert "attributed to gc outside any GC span" in proc.stderr

    def test_merge_cause_outside_merge_span(self, tmp_path):
        path = tmp_path / "merge_leak.jsonl"
        self.write(path, [
            {"type": "BlockErase", "ts": 1, "scheme": "x", "cause": "merge",
             "ppn": 2, "dur_us": 1500.0},
        ])
        proc = run_tool(str(path))
        assert proc.returncode == 1
        assert "attributed to merge outside any merge span" in proc.stderr

    def test_host_cause_inside_gc_span(self, tmp_path):
        path = tmp_path / "host_in_gc.jsonl"
        self.write(path, [
            {"type": "GCStart", "ts": 0, "scheme": "x", "cause": "gc"},
            {"type": "PageProgram", "ts": 1, "scheme": "x", "cause": "host",
             "ppn": 7, "dur_us": 200.0},
            {"type": "GCEnd", "ts": 2, "scheme": "x", "cause": "gc",
             "dur_us": 2.0},
        ])
        proc = run_tool(str(path))
        assert proc.returncode == 1
        assert "attributed to host inside an open GC span" in proc.stderr
        assert "cause stack leaked" in proc.stderr

    def test_consistent_attribution_passes(self, tmp_path):
        path = tmp_path / "consistent.jsonl"
        self.write(path, [
            {"type": "PageProgram", "ts": 0, "scheme": "x", "cause": "host",
             "ppn": 0, "dur_us": 200.0},
            {"type": "GCStart", "ts": 1, "scheme": "x", "cause": "gc"},
            {"type": "PageRead", "ts": 2, "scheme": "x", "cause": "gc",
             "ppn": 3, "dur_us": 25.0},
            # Deeper causes (mapping/convert) inside a span are legal:
            # innermost-wins pushes them over gc without an event pair.
            {"type": "PageProgram", "ts": 3, "scheme": "x",
             "cause": "convert", "ppn": 9, "dur_us": 200.0},
            {"type": "GCEnd", "ts": 4, "scheme": "x", "cause": "gc",
             "dur_us": 3.0},
            {"type": "PageRead", "ts": 5, "scheme": "x", "cause": "host",
             "ppn": 1, "dur_us": 25.0},
        ])
        proc = run_tool(str(path))
        assert proc.returncode == 0, proc.stderr

    def test_spans_track_per_scheme(self, tmp_path):
        # Scheme y's open GC span must not excuse scheme x's gc op.
        path = tmp_path / "per_scheme.jsonl"
        self.write(path, [
            {"type": "GCStart", "ts": 0, "scheme": "y", "cause": "gc"},
            {"type": "PageRead", "ts": 1, "scheme": "x", "cause": "gc",
             "ppn": 3, "dur_us": 25.0},
            {"type": "GCEnd", "ts": 2, "scheme": "y", "cause": "gc",
             "dur_us": 2.0},
        ])
        proc = run_tool(str(path))
        assert proc.returncode == 1
        assert "attributed to gc outside any GC span (x)" in proc.stderr
