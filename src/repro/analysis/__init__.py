"""Result analysis: cross-scheme comparison, wear, and RAM models."""

from .breakdown import (
    BREAKDOWN_HEADERS,
    breakdown_rows,
    overhead_ratio,
    time_breakdown,
)
from .compare import (
    COMPARISON_HEADERS,
    check_expected_ordering,
    comparison_rows,
    optimality_gap,
)
from .ram import ram_model, scalability_table
from .wear import erase_histogram, lifetime_projection, wear_profile

__all__ = [
    "BREAKDOWN_HEADERS",
    "breakdown_rows",
    "overhead_ratio",
    "time_breakdown",
    "COMPARISON_HEADERS",
    "check_expected_ordering",
    "comparison_rows",
    "optimality_gap",
    "ram_model",
    "scalability_table",
    "erase_histogram",
    "lifetime_projection",
    "wear_profile",
]
