"""E15 - Figure: tail-latency decomposition, LazyFTL vs FAST vs DFTL.

The paper's latency-spike argument, made attributable: E6 shows *that*
FAST's tail is orders of magnitude worse; this experiment shows *why*.
Each scheme runs fully instrumented (OpLatencyRecorder via
``collect_report``), so every microsecond of write latency lands in a
cause bucket.  Expected shape: FAST's tail is almost entirely full-merge
time, DFTL pays a visible translation-read tax on top of GC, and LazyFTL
replaces both with cheap mapping commits - its slowest op is an ordinary
GC pass, not a merge storm.
"""

from repro.obs.report import collect_report
from repro.sim import HEADLINE_DEVICE
from repro.sim.report import format_table
from repro.traces import uniform_random

from conftest import N_REQUESTS, emit

SCHEMES = ("FAST", "DFTL", "LazyFTL")


def run_experiment():
    footprint = int(HEADLINE_DEVICE.logical_pages * 0.8)
    trace = uniform_random(N_REQUESTS, footprint, seed=0, name="random")
    snapshots = {}
    for scheme in SCHEMES:
        snapshot, _, _ = collect_report(
            scheme, trace, device=HEADLINE_DEVICE, precondition="steady",
        )
        snapshots[scheme] = snapshot
    return snapshots


def _shares(entry):
    """Per-cause fraction of one class's attributed flash time."""
    total = sum(entry["by_cause_us"].values())
    if not total:
        return {}
    return {k: v / total for k, v in entry["by_cause_us"].items()}


def test_e15_latency_decomposition(benchmark):
    snapshots = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    writes = {
        s: snapshots[s]["latency"]["classes"]["write"] for s in SCHEMES
    }

    rows = [
        [s, writes[s]["p50_us"], writes[s]["p99_us"],
         writes[s]["p999_us"], writes[s]["max_us"]]
        for s in SCHEMES
    ]
    text = format_table(
        ["scheme", "p50_us", "p99_us", "p999_us", "max_us"], rows,
        title=f"E15: write-latency tail, {N_REQUESTS} random writes",
    )

    causes = sorted({c for s in SCHEMES for c in writes[s]["by_cause_us"]})
    rows = [
        [s] + [f"{_shares(writes[s]).get(c, 0.0):.1%}" for c in causes]
        for s in SCHEMES
    ]
    text += "\n\n" + format_table(
        ["scheme"] + causes, rows,
        title="share of attributed write latency by cause",
    )

    text += "\n\nslowest write per scheme, decomposed:\n"
    for s in SCHEMES:
        worst = writes[s]["slowest"][0]
        parts = ", ".join(
            f"{c}={v / 1000:.1f}ms"
            for c, v in sorted(worst["by_cause_us"].items(),
                               key=lambda kv: -kv[1])
        )
        text += f"  {s:8s} {worst['dur_us'] / 1000:8.1f}ms  ({parts})\n"
    emit("e15_latency_decomposition", text)

    # Every microsecond accounted for, for every scheme.
    for s in SCHEMES:
        overall = snapshots[s]["latency"]["classes"]["overall"]
        assert overall["attributed_fraction"] >= 0.99, s
        assert snapshots[s]["latency"]["invariant"]["violations"] == 0, s

    # The paper's spike comparison: FAST's tail is merge time ...
    assert writes["FAST"]["p999_us"] > writes["LazyFTL"]["p999_us"] * 3
    assert _shares(writes["FAST"])["merge"] > 0.5
    worst_fast = writes["FAST"]["slowest"][0]["by_cause_us"]
    assert max(worst_fast, key=worst_fast.get) == "merge"
    # ... LazyFTL never merges, it pays small mapping commits instead ...
    assert _shares(writes["LazyFTL"]).get("merge", 0.0) < 0.01
    assert _shares(writes["LazyFTL"]).get("mapping_commit", 0.0) > 0.0
    # ... and DFTL's translation reads cost more than LazyFTL's.
    assert _shares(writes["DFTL"]).get("translation_read", 0.0) > \
        _shares(writes["LazyFTL"]).get("translation_read", 0.0)
