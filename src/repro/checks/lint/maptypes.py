"""FTL007: no dict-backed logical->physical maps in hot modules.

The engine's hot paths (``repro.core`` and ``repro.ftl``) keep their
logical-to-physical translation state in flat array-backed tables
(:class:`repro.perf.maptable.MapTable`): dense integer keys in a dict pay
for hashing, boxed ints and pointer chasing on every single page
operation.  This rule flags ``self.<map-ish attribute> = {}`` (or
``dict()`` / ``OrderedDict()`` / ``defaultdict()``) assignments in those
packages so new schemes start on the fast representation.

Structures that are *sparse by design* - DFTL's bounded CMT is the
canonical case - opt out per line with ``# ftlint: disable=FTL007`` and a
comment explaining why a flat table would be wrong.
"""

from __future__ import annotations

import ast
from typing import Optional

from .base import Rule

#: Attribute-name fragments that mark a logical->physical map.
_MAP_NAME_HINTS = ("map", "gtd", "cmt", "l2p", "p2l")
#: Constructors that build a dict-backed container.
_DICT_CALLS = frozenset({"dict", "OrderedDict", "defaultdict", "Counter"})


class DictMapRule(Rule):
    RULE_ID = "FTL007"
    MESSAGE = ("logical->physical maps in hot modules must be "
               "array-backed (repro.perf.maptable), not dicts")
    SCOPES = frozenset({"core", "ftl"})

    @staticmethod
    def _is_mappish(attr: str) -> bool:
        lowered = attr.lower()
        return any(hint in lowered for hint in _MAP_NAME_HINTS)

    @staticmethod
    def _is_dict_value(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                return func.id in _DICT_CALLS
            if isinstance(func, ast.Attribute):
                return func.attr in _DICT_CALLS
        return False

    def _check(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if value is None:
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._is_mappish(target.attr)
            and self._is_dict_value(value)
        ):
            # Report on the value: the dict construction is the offense,
            # and that is where a per-line disable comment lives when the
            # assignment wraps.
            self.report(
                value,
                f"self.{target.attr} is a dict-backed logical->physical "
                "map; use repro.perf.maptable.MapTable (or justify with "
                "# ftlint: disable=FTL007)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check(node.target, node.value)
        self.generic_visit(node)
