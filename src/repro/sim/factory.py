"""Construction helpers: build a device + FTL pair by scheme name.

Benchmarks and examples go through this module so every scheme runs on an
identically configured device and overprovisioning story.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..core import LazyConfig, LazyFTL
from ..flash import FlashGeometry, NandFlash, SLC_TIMING, TimingModel
from ..ftl import (
    BastFTL,
    DftlFTL,
    FastFTL,
    FlashTranslationLayer,
    LastFTL,
    NftlFTL,
    PageFTL,
    SuperblockFTL,
)

#: Scheme names accepted by :func:`build_ftl`, in the paper's
#: presentation order ("LAST" and "superblock" are extra baselines beyond
#: the paper's evaluated four - see repro.ftl.last / repro.ftl.superblock).
SCHEMES = ("NFTL", "BAST", "FAST", "LAST", "superblock", "DFTL",
           "LazyFTL", "ideal")


def build_ftl(
    scheme: str,
    flash: NandFlash,
    logical_pages: int,
    **options: Any,
) -> FlashTranslationLayer:
    """Instantiate a scheme by name on an existing device.

    Scheme-specific options are forwarded: ``num_log_blocks`` (BAST),
    ``num_rw_log_blocks`` (FAST), ``cmt_entries`` (DFTL), ``config``
    (LazyFTL), etc.  The chip's sequential-programming enforcement is
    aligned with the scheme's needs.
    """
    builders: Dict[str, Callable[..., FlashTranslationLayer]] = {
        "nftl": NftlFTL,
        "bast": BastFTL,
        "fast": FastFTL,
        "last": LastFTL,
        "superblock": SuperblockFTL,
        "dftl": DftlFTL,
        "lazyftl": LazyFTL,
        "lazy": LazyFTL,
        "ideal": PageFTL,
        "page": PageFTL,
    }
    key = scheme.lower()
    if key not in builders:
        raise ValueError(
            f"unknown scheme {scheme!r}; choose from {sorted(builders)}"
        )
    ftl = builders[key](flash, logical_pages, **options)
    flash.enforce_sequential = not ftl.requires_random_program
    return ftl


def standard_setup(
    scheme: str,
    num_blocks: int = 256,
    pages_per_block: int = 64,
    page_size: int = 2048,
    logical_fraction: float = 0.85,
    timing: TimingModel = SLC_TIMING,
    sanitize: bool = False,
    **options: Any,
):
    """Build a (flash, ftl, logical_pages) triple with shared defaults.

    ``logical_fraction`` fixes the exported capacity as a fraction of raw
    capacity (the rest is overprovisioning shared by all schemes); the
    LazyFTL anchor blocks are excluded for everyone so the usable space is
    identical across schemes.

    With ``sanitize=True`` the device is a validating
    :class:`~repro.checks.SanitizedNandFlash` and the returned FTL is
    wrapped in :class:`~repro.checks.SanitizedFTL` (read-your-writes
    shadow map + :meth:`audit`); any NAND-contract breach raises a
    structured :class:`~repro.checks.SanitizerViolation`.
    """
    if not 0.0 < logical_fraction < 1.0:
        raise ValueError("logical_fraction must be in (0, 1)")
    geometry = FlashGeometry(
        num_blocks=num_blocks,
        pages_per_block=pages_per_block,
        page_size=page_size,
    )
    if sanitize:
        from ..checks import SanitizedFTL, SanitizedNandFlash

        flash = SanitizedNandFlash(geometry, timing=timing)
    else:
        flash = NandFlash(geometry, timing=timing)
    logical_pages = int(geometry.total_pages * logical_fraction)
    ftl = build_ftl(scheme, flash, logical_pages, **options)
    if sanitize:
        ftl = SanitizedFTL(ftl)
    return flash, ftl, logical_pages


def default_lazy_config(**overrides: Any) -> LazyConfig:
    """The LazyFTL configuration used by the headline benchmarks."""
    defaults = {"uba_blocks": 8, "cba_blocks": 4, "gc_free_threshold": 4}
    defaults.update(overrides)
    return LazyConfig(**defaults)
