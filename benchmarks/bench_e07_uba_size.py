"""E7 - Figure: sensitivity to the update block area size (m_u).

A larger UBA defers more mapping commits, enlarging conversion batches
(fewer GMT writes per host write) at the cost of RAM for the UMT.  The
curve should fall with m_u and flatten - the knob trades RAM for
translation overhead, never correctness.
"""

from repro.sim import HEADLINE_DEVICE, default_lazy_config, sweep
from repro.sim.report import format_series
from repro.traces import uniform_random

from conftest import N_REQUESTS, emit

UBA_SIZES = (4, 8, 16, 32, 64)


def run_sweep():
    footprint = int(HEADLINE_DEVICE.logical_pages * 0.8)
    trace = uniform_random(N_REQUESTS, footprint, seed=0, name="random")
    return sweep(
        "LazyFTL",
        trace_of=lambda m_u: trace,
        parameter_values=UBA_SIZES,
        options_of=lambda m_u: {
            "config": default_lazy_config(uba_blocks=m_u, cba_blocks=4)
        },
        device_of=lambda m_u: HEADLINE_DEVICE,
        precondition="steady",
    )


def test_e07_uba_size(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    series = {
        "mean response (us)": [r.mean_response_us for r in results],
        "map writes": [float(r.ftl_stats.map_writes) for r in results],
        "commits per map write": [
            r.ftl_stats.batched_commits / max(1, r.ftl_stats.map_writes)
            for r in results
        ],
        "UMT RAM (KiB)": [
            (uba + 4) * HEADLINE_DEVICE.pages_per_block * 8 / 1024
            for uba in UBA_SIZES
        ],
    }
    text = format_series(
        "metric \\ m_u", list(UBA_SIZES), series,
        title="E7: LazyFTL sensitivity to UBA size "
              f"({N_REQUESTS} random writes)",
    )
    emit("e07_uba_size", text)

    # Larger UBA -> more batching -> fewer mapping writes.
    map_writes = [r.ftl_stats.map_writes for r in results]
    assert map_writes[-1] < map_writes[0]
    batch = [r.ftl_stats.batched_commits / max(1, r.ftl_stats.map_writes)
             for r in results]
    assert batch[-1] > batch[0]
    # And the response-time trend improves (allowing small noise).
    assert results[-1].mean_response_us < results[0].mean_response_us * 1.02
