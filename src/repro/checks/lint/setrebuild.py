"""FTL009: membership sets must not be rebuilt per iteration.

``[b for b in blocks if b not in set(scanned)]`` rebuilds ``set(scanned)``
for *every* candidate ``b`` - the comprehension condition is evaluated per
element, so the "optimisation" of converting to a set for O(1) membership
turns into an O(n*m) scan plus n set constructions.  The same trap exists
for a ``set(...)`` constructed inside a loop body purely to answer a
membership test.  Hoist the construction: ``scanned = frozenset(scanned)``
once, then test against the prebuilt set.

The rule flags ``set(X)``/``frozenset(X)`` calls used as the right-hand
side of an ``in``/``not in`` test when they appear inside a comprehension
condition or a loop body and ``X`` does not depend on the iteration
variable (i.e. the set is loop-invariant and should be hoisted).
"""

from __future__ import annotations

import ast
from typing import List, Set

from .base import Rule


def _load_names(node: ast.AST) -> Set[str]:
    return {
        sub.id for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def _bound_names(target: ast.expr) -> Set[str]:
    return {
        sub.id for sub in ast.walk(target)
        if isinstance(sub, ast.Name)
    }


class SetRebuildRule(Rule):
    RULE_ID = "FTL009"
    MESSAGE = ("membership set rebuilt per iteration; hoist the "
               "set()/frozenset() out of the comprehension/loop")
    SCOPES = frozenset({"core", "ftl", "sim", "flash"})

    def _flag_membership_sets(self, condition: ast.expr,
                              loop_vars: Set[str]) -> None:
        for node in ast.walk(condition):
            if not (isinstance(node, ast.Compare)
                    and any(isinstance(op, (ast.In, ast.NotIn))
                            for op in node.ops)):
                continue
            for comparator in node.comparators:
                if not (isinstance(comparator, ast.Call)
                        and isinstance(comparator.func, ast.Name)
                        and comparator.func.id in ("set", "frozenset")):
                    continue
                arg_names: Set[str] = set()
                for arg in comparator.args:
                    arg_names |= _load_names(arg)
                if arg_names & loop_vars:
                    continue  # depends on the loop variable: not hoistable
                self.report(
                    comparator,
                    f"{comparator.func.id}(...) rebuilt for every "
                    "membership test; build it once before the "
                    "comprehension/loop (frozenset) and test against "
                    "that",
                )

    # -- comprehensions ------------------------------------------------
    def _visit_comp(self, node: ast.AST) -> None:
        loop_vars: Set[str] = set()
        for gen in node.generators:
            loop_vars |= _bound_names(gen.target)
        for gen in node.generators:
            for condition in gen.ifs:
                self._flag_membership_sets(condition, loop_vars)
        # The element expression is also evaluated per iteration.
        for elt_field in ("elt", "key", "value"):
            elt = getattr(node, elt_field, None)
            if elt is not None:
                self._flag_membership_sets(elt, loop_vars)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- explicit loops ------------------------------------------------
    def _visit_loop(self, node: ast.AST) -> None:
        loop_vars: Set[str] = set()
        target = getattr(node, "target", None)
        if target is not None:
            loop_vars = _bound_names(target)
        stack: List[ast.AST] = list(node.body)
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.For, ast.AsyncFor, ast.While,
                                ast.ListComp, ast.SetComp, ast.DictComp,
                                ast.GeneratorExp)):
                continue  # nested loops/comps get their own visit
            if isinstance(sub, ast.Compare):
                self._flag_membership_sets(sub, loop_vars)
                continue
            stack.extend(ast.iter_child_nodes(sub))
        self.generic_visit(node)

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop
