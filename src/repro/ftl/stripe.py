"""Striped frontier rotation for multi-channel devices.

On a parallel device (:class:`~repro.flash.parallel.ParallelNandFlash`)
a single open frontier block serializes every program behind one
channel/die queue.  :class:`StripedFrontier` lets an FTL keep up to
``ways`` blocks open concurrently - ideally one per parallel unit - and
rotate page allocations round-robin across them, so bursts of programs
(host writes, GC relocation, GMT commits) land on different units and
overlap.

The helper is pure RAM-side bookkeeping: it never touches flash and is
only *advisory* about placement.  FTLs instantiate it exclusively when
``geometry.parallel_units > 1``, so serial (1x1x1) devices execute the
pre-existing single-frontier code paths untouched - bit-identical by
construction.  Crash recovery does not persist rotation state; it is
rebuilt (or simply restarted empty) from the non-full blocks each area
already tracks, because a striped frontier set degenerates to ordinary
partially-written blocks, which every conversion/GC path already
handles.
"""

from __future__ import annotations

from typing import Callable, List, Optional

#: Upper bound on concurrently-open blocks per frontier.  Keeps the
#: extra pool footprint (mapping/translation frontiers allocate beyond
#: their old single block) bounded on very wide geometries; four ways
#: already captures most of the overlap win for program bursts.
MAX_STRIPE_WAYS = 4


def stripe_ways(units: int, capacity: Optional[int] = None) -> int:
    """How many blocks a frontier should keep open on ``units`` units.

    ``capacity`` bounds it for block areas with a fixed budget (keep at
    least one slot of headroom so the area converts full blocks before
    open ones).  Returns 1 when striping is pointless.
    """
    ways = min(units, MAX_STRIPE_WAYS)
    if capacity is not None:
        ways = min(ways, capacity - 1)
    return max(1, ways)


class StripedFrontier:
    """Round-robin rotation over up to ``ways`` concurrently-open blocks.

    The rotation holds physical block numbers in open order.  Blocks
    leave the rotation when they fill (``next_slot`` evicts them,
    reporting each through ``on_full``) or when maintenance consumes
    them early (:meth:`discard` - conversion and GC of a still-open
    block stay legal, exactly as flushing a partial frontier always
    was).
    """

    __slots__ = ("units", "ways", "open_blocks", "_cursor")

    def __init__(self, units: int, ways: int):
        if units < 2:
            raise ValueError("striping needs at least 2 parallel units")
        self.units = units
        self.ways = max(1, ways)
        self.open_blocks: List[int] = []
        self._cursor = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StripedFrontier(units={self.units}, ways={self.ways}, "
            f"open={self.open_blocks})"
        )

    def next_slot(
        self,
        flash,
        on_full: Optional[Callable[[int], None]] = None,
    ) -> Optional[int]:
        """Next open block with a free page, rotating; None when dry.

        Full blocks encountered while rotating are evicted from the
        rotation (and handed to ``on_full``, e.g. the mapping store's
        retired set); the caller opens replacements.
        """
        open_blocks = self.open_blocks
        blocks = flash.blocks
        ppb = flash.geometry.pages_per_block
        while open_blocks:
            if self._cursor >= len(open_blocks):
                self._cursor = 0
            pbn = open_blocks[self._cursor]
            if blocks[pbn]._write_ptr < ppb:
                self._cursor += 1
                return pbn
            open_blocks.pop(self._cursor)
            if on_full is not None:
                on_full(pbn)
        return None

    def note_open(self, pbn: int) -> None:
        """Add a freshly-allocated block to the rotation."""
        if pbn in self.open_blocks:
            raise ValueError(f"block {pbn} already open in this frontier")
        self.open_blocks.append(pbn)

    def discard(self, pbn: int) -> None:
        """Drop a block from the rotation (converted/collected early)."""
        try:
            index = self.open_blocks.index(pbn)
        except ValueError:
            return
        self.open_blocks.pop(index)
        if index < self._cursor:
            self._cursor -= 1

    def uncovered_unit(self) -> int:
        """A parallel unit no open block lives on (for the next open).

        Prefers the lowest uncovered unit; with every unit covered
        (ways > units never happens, but duplicate units can after
        fallback allocations) returns unit 0.
        """
        covered = {pbn % self.units for pbn in self.open_blocks}
        for unit in range(self.units):
            if unit not in covered:
                return unit
        return 0

    def reset(self, open_blocks: List[int]) -> None:
        """Rebuild the rotation after restore/recovery."""
        self.open_blocks = list(open_blocks[-self.ways:])
        self._cursor = 0
