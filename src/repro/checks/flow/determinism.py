"""FTL012: no iteration over unordered sets where order can leak out.

The golden-stats gate and the crash-consistency checker both assume the
simulator is bit-deterministic: the same trace replays to the same stats
on every run and every Python build.  ``set`` iteration order is a hash-
table artefact - stable enough for ints within one process to be a trap,
and gone the moment a key type or interpreter changes.  This rule flags
expressions that *iterate* a value statically known to be a set:

* ``for x in s`` / comprehension generators,
* ordering-sensitive consumers: ``list()``, ``tuple()``, ``iter()``,
  ``enumerate()``, ``next()``, ``zip()``, ``reversed()``.

Set-ness is established by dataflow, not just syntax: a local variable
counts when *every* reaching definition is set-typed (literal, ``set``/
``frozenset()`` call, set comprehension, set algebra on a set), and a
``self`` attribute counts when every assignment to it anywhere in the
class is set-typed.  Membership tests and order-insensitive reductions
(``sorted``/``min``/``max``/``sum``/``len``/``any``/``all``/``set``/
``frozenset``) are exempt by design.

Iteration that provably cannot reach stats, traces or victim selection
(for example element-wise clears) opts out per line with
``# ftlint: disable=FTL012`` and a reason.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .base import FlowRule, FunctionAnalysis
from .dataflow import stmt_defs
from .summaries import ModuleSummaries, call_name_chain

#: Consumers whose result does not depend on iteration order.
_ORDER_FREE = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set",
    "frozenset", "bool",
})

#: Consumers that expose iteration order.
_ORDER_SENSITIVE = frozenset({
    "list", "tuple", "iter", "enumerate", "next", "zip", "reversed",
})

_SET_ALGEBRA_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "copy",
})


class _SetTyping:
    """Syntactic set-typedness of expressions, locals and self attrs."""

    def __init__(self, attr_sets: Set[str],
                 analysis: Optional[FunctionAnalysis]):
        self.attr_sets = attr_sets
        self.analysis = analysis

    def expr_is_set(self, node: ast.expr,
                    local_sets: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = call_name_chain(node.func)
            if chain and chain[-1] in ("set", "frozenset"):
                return True
            if chain and chain[-1] in _SET_ALGEBRA_METHODS \
                    and isinstance(node.func, ast.Attribute) \
                    and self.expr_is_set(node.func.value, local_sets):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self.expr_is_set(node.left, local_sets)
                    or self.expr_is_set(node.right, local_sets))
        if isinstance(node, ast.Name):
            return node.id in local_sets
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr in self.attr_sets
        return False


def class_set_attrs(tree: ast.Module) -> Dict[str, Set[str]]:
    """For each class: ``self`` attributes whose every assignment in the
    class body is set-typed (``self._members = set()`` anywhere, and no
    conflicting non-set assignment)."""
    result: Dict[str, Set[str]] = {}
    empty_typing = _SetTyping(set(), None)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        set_assigned: Set[str] = set()
        other_assigned: Set[str] = set()
        for sub in ast.walk(node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    if value is not None and empty_typing.expr_is_set(
                            value, set()):
                        set_assigned.add(target.attr)
                    else:
                        other_assigned.add(target.attr)
        result[node.name] = set_assigned - other_assigned
    return result


class SetIterationRule(FlowRule):
    RULE_ID = "FTL012"
    MESSAGE = ("iteration over an unordered set can leak hash order "
               "into stats/traces/victim selection; sort or justify")
    SCOPES = frozenset({"core", "ftl", "sim"})

    def run(self, tree: ast.AST) -> List:
        if isinstance(tree, ast.Module):
            self._attr_sets_by_class = class_set_attrs(tree)
            self._class_of_func: Dict[int, str] = {}
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            self._class_of_func[id(item)] = node.name
        return super().run(tree)

    def check_function(self, analysis: FunctionAnalysis,
                       summaries: ModuleSummaries,
                       tree: ast.Module) -> None:
        cls = self._class_of_func.get(id(analysis.func))
        attr_sets = self._attr_sets_by_class.get(cls, set()) if cls \
            else set()
        typing = _SetTyping(attr_sets, analysis)
        local_sets = self._set_typed_locals(analysis, typing)

        func = analysis.func
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not func:
                continue  # nested defs are analysed on their own
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if typing.expr_is_set(node.iter, local_sets) \
                        or self._iter_name_is_set_by_reaching_defs(
                            analysis, typing, local_sets, node):
                    self.report(
                        node,
                        "for-loop iterates a set; iteration order is a "
                        "hash artefact - use sorted(...) or justify "
                        "order-insensitivity with a disable",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if typing.expr_is_set(gen.iter, local_sets):
                        self.report(
                            node,
                            "comprehension iterates a set; wrap the "
                            "iterable in sorted(...) to pin the order",
                        )
            elif isinstance(node, ast.Call):
                chain = call_name_chain(node.func)
                if chain and chain[-1] in _ORDER_SENSITIVE and node.args:
                    if typing.expr_is_set(node.args[0], local_sets):
                        self.report(
                            node,
                            f"{chain[-1]}(...) materialises a set's hash "
                            "order; use sorted(...) instead",
                        )

    @staticmethod
    def _iter_name_is_set_by_reaching_defs(
        analysis: FunctionAnalysis, typing: "_SetTyping",
        local_sets: Set[str], loop: ast.stmt,
    ) -> bool:
        """Precise check for ``for x in s``: every definition of ``s``
        *reaching this loop header* is set-typed.  Catches variables the
        coarse all-assignments pass rejects because a different, non-set
        binding exists on an unrelated path."""
        node_iter = loop.iter  # type: ignore[attr-defined]
        if not isinstance(node_iter, ast.Name):
            return False
        try:
            block, index = analysis.cfg.position_of(loop)
        except KeyError:
            return False
        defs = analysis.reaching.defs_of(block, index, node_iter.id)
        if not defs:
            return False
        for def_stmt in defs:
            if def_stmt is None:
                return False  # bound as a parameter: type unknown
            if not (isinstance(def_stmt, ast.Assign)
                    and typing.expr_is_set(def_stmt.value, local_sets)):
                return False
        return True

    @staticmethod
    def _set_typed_locals(analysis: FunctionAnalysis,
                          typing: _SetTyping) -> Set[str]:
        """Locals whose every assignment in the function is set-typed
        (single-pass approximation of the reaching-defs condition: a
        variable that is *ever* rebound to a non-set stops counting)."""
        set_named: Set[str] = set()
        other_named: Set[str] = set()
        func = analysis.func
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not func:
                continue
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], None
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], None
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        # Grow iteratively: `s = set(); t = s` counts.
                        if value is not None and typing.expr_is_set(
                                value, set_named):
                            set_named.add(name_node.id)
                        else:
                            other_named.add(name_node.id)
        return set_named - other_named
