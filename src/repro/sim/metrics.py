"""Latency distributions and response-time statistics.

Samples accumulate into ``array('d')`` buffers: one machine double per
sample instead of a boxed float object, which matters when every replayed
request records into three distributions (overall + reads/writes).
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Dict, List

try:  # numpy accelerates the bulk paths; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the fallback tests
    _np = None  # type: ignore[assignment]


class LatencyDistribution:
    """Accumulates latency samples and answers summary queries.

    Keeps raw samples (traces in this reproduction are at most a few
    hundred thousand requests), so percentiles are exact.
    """

    __slots__ = ("_samples", "_total", "_sorted", "_min", "_max",
                 "sorts_performed")

    def __init__(self) -> None:
        self._samples: "array[float]" = array("d")
        self._total = 0.0
        self._sorted = True
        self._min = math.inf
        self._max = 0.0
        #: How many times the sample buffer was actually sorted; queries
        #: between additions must not grow this (regression-tested).
        self.sorts_performed = 0

    def add(self, value: float) -> None:
        if not math.isfinite(value):
            # NaN slips past every comparison-based guard (NaN < 0 is
            # False) and then poisons the sort memo and every percentile;
            # infinities make mean/total meaningless.  Reject both.
            raise ValueError(
                f"latency samples must be finite, got {value!r}"
            )
        if value < 0:
            raise ValueError("latency samples must be non-negative")
        samples = self._samples
        if samples and value < samples[-1]:
            self._sorted = False
        samples.append(value)
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def add_many(self, values: Any) -> None:
        """Bulk :meth:`add`: one epoch's samples in one call.

        Bit-identical to adding each value in order - the running total
        accumulates strictly sequentially (``np.add.accumulate``, never
        the pairwise ``np.add.reduce``), min/max/sortedness update to the
        same results, and validation still rejects non-finite or negative
        samples before any state changes.  Accepts a numpy array (the
        vectorized path) or any float sequence (pure-Python path), so the
        batch engine's fallback backend exercises no numpy at all.
        """
        if len(values) == 0:
            return
        if _np is not None and isinstance(values, _np.ndarray):
            if values.dtype != _np.float64:
                values = values.astype(_np.float64)
            if not bool(_np.isfinite(values).all()):
                raise ValueError("latency samples must be finite")
            if bool((values < 0).any()):
                raise ValueError("latency samples must be non-negative")
        else:
            isfinite = math.isfinite
            for value in values:  # validate before mutating anything
                if not isfinite(value):
                    raise ValueError(
                        f"latency samples must be finite, got {value!r}"
                    )
                if value < 0:
                    raise ValueError("latency samples must be non-negative")
        self._extend_unchecked(values)

    def _extend_unchecked(self, values: Any) -> None:
        """The mutation half of :meth:`add_many`, without validation.

        Internal: callers (``add_many`` and
        :meth:`ResponseStats.record_many`) have already established every
        value is finite and non-negative, so the batch is applied without
        re-walking it - ``record_many`` would otherwise validate each
        response up to three times (overall + per-type distributions).
        """
        n = len(values)
        samples = self._samples
        if _np is not None and isinstance(values, _np.ndarray):
            if self._sorted:
                if (samples and values[0] < samples[-1]) or (
                    n > 1 and bool((values[1:] < values[:-1]).any())
                ):
                    self._sorted = False
            acc = _np.empty(n + 1)
            acc[0] = self._total
            acc[1:] = values
            _np.add.accumulate(acc, out=acc)
            self._total = float(acc[n])
            lo = float(values.min())
            hi = float(values.max())
            if lo < self._min:
                self._min = lo
            if hi > self._max:
                self._max = hi
            samples.frombytes(
                values.tobytes() if values.flags["C_CONTIGUOUS"]
                else _np.ascontiguousarray(values).tobytes()
            )
            return
        total = self._total
        lo = self._min
        hi = self._max
        is_sorted = self._sorted
        last = samples[-1] if samples else None
        append = samples.append
        for value in values:
            if is_sorted and last is not None and value < last:
                is_sorted = False
            last = value
            append(value)
            total += value
            if value < lo:
                lo = value
            if value > hi:
                hi = value
        self._total = total
        self._min = lo
        self._max = hi
        self._sorted = is_sorted

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / len(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        return self._max if self._samples else 0.0

    @property
    def min(self) -> float:
        return self._min if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Exact q-quantile (0 < q <= 100), nearest-rank method.

        Documented edge cases: an **empty** distribution returns ``0.0``
        for every q; a **single sample** returns exactly that sample.
        """
        if not 0 < q <= 100:
            raise ValueError("q must be in (0, 100]")
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        rank = max(1, math.ceil(q / 100.0 * len(self._samples)))
        return self._samples[rank - 1]

    def cdf_points(self, resolution: int = 100) -> List[tuple]:
        """(latency, cumulative fraction) pairs for CDF plots (E6)."""
        if not self._samples:
            return []
        self._ensure_sorted()
        n = len(self._samples)
        points = []
        for i in range(1, resolution + 1):
            idx = max(0, math.ceil(i / resolution * n) - 1)
            points.append((self._samples[idx], i / resolution))
        return points

    def summary(self) -> Dict[str, float]:
        """Mean / tail figures used by every benchmark report."""
        return {
            "count": self.count,
            "mean_us": self.mean,
            "p50_us": self.percentile(50),
            "p95_us": self.percentile(95),
            "p99_us": self.percentile(99),
            "p999_us": self.percentile(99.9) if self.count >= 1000
            else self.percentile(99),
            "max_us": self.max,
        }

    def _ensure_sorted(self) -> None:
        """Sort once, memoize: repeated percentile/CDF queries between
        additions reuse the sorted buffer instead of re-sorting."""
        if not self._sorted:
            # array('d') has no in-place sort; round-trip through a list.
            self._samples = array("d", sorted(self._samples))
            self._sorted = True
            self.sorts_performed += 1


class ResponseStats:
    """Per-operation-type response-time distributions."""

    __slots__ = ("overall", "reads", "writes")

    def __init__(self) -> None:
        self.overall = LatencyDistribution()
        self.reads = LatencyDistribution()
        self.writes = LatencyDistribution()

    def record(self, is_write: bool, response_us: float) -> None:
        self.overall.add(response_us)
        if is_write:
            self.writes.add(response_us)
        else:
            self.reads.add(response_us)

    def record_many(self, ops: Any, responses: Any) -> None:
        """Bulk :meth:`record` for one replay epoch.

        ``ops`` is the epoch's slice of the columnar op codes (truthy =
        write) and ``responses`` its response times, same length.  Every
        distribution receives its subsequence in trace order, so the
        result is bit-identical to recording one response at a time.
        Validation (finite, non-negative) runs once over the batch; the
        three distributions then extend unchecked.
        """
        if len(responses) == 0:
            return
        if _np is not None and isinstance(responses, _np.ndarray):
            if responses.dtype != _np.float64:
                responses = responses.astype(_np.float64)
            if not bool(_np.isfinite(responses).all()):
                raise ValueError("latency samples must be finite")
            if bool((responses < 0).any()):
                raise ValueError("latency samples must be non-negative")
            op_codes = _np.frombuffer(ops, dtype=_np.int8) \
                if not isinstance(ops, _np.ndarray) else ops
            self.overall._extend_unchecked(responses)
            writes_mask = op_codes != 0
            write_vals = responses[writes_mask]
            read_vals = responses[~writes_mask]
            if len(write_vals):
                self.writes._extend_unchecked(write_vals)
            if len(read_vals):
                self.reads._extend_unchecked(read_vals)
            return
        isfinite = math.isfinite
        for value in responses:
            if not isfinite(value):
                raise ValueError(
                    f"latency samples must be finite, got {value!r}"
                )
            if value < 0:
                raise ValueError("latency samples must be non-negative")
        self.overall._extend_unchecked(responses)
        write_vals = array("d")
        read_vals = array("d")
        for op, value in zip(ops, responses):
            if op:
                write_vals.append(value)
            else:
                read_vals.append(value)
        if write_vals:
            self.writes._extend_unchecked(write_vals)
        if read_vals:
            self.reads._extend_unchecked(read_vals)

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            "overall": self.overall.summary(),
            "reads": self.reads.summary(),
            "writes": self.writes.summary(),
        }
