"""Exception hierarchy for the raw NAND flash simulator.

All flash-level failures derive from :class:`FlashError` so callers can catch
device problems with a single ``except`` clause while still being able to
distinguish programming-constraint violations from simulated power failures.
"""

from __future__ import annotations


class FlashError(Exception):
    """Base class for every error raised by the flash device simulator."""


class OutOfRangeError(FlashError):
    """An address (physical page or block number) is outside the geometry."""

    def __init__(self, kind: str, value: int, limit: int):
        self.kind = kind
        self.value = value
        self.limit = limit
        super().__init__(f"{kind} {value} out of range [0, {limit})")


class ProgramError(FlashError):
    """A program (write) operation violated NAND constraints.

    Raised when programming a page that is not in the erased state
    (erase-before-write) or, when sequential programming is enforced,
    programming pages of a block out of order.
    """


class EraseError(FlashError):
    """An erase operation was invalid (e.g. erasing a bad block index)."""


class ReadError(FlashError):
    """A read touched a page whose content is undefined (never programmed)."""


class PowerLossError(FlashError):
    """The simulated device lost power.

    The operation that trips the fault does *not* take effect: NAND programs
    and erases are atomic at our modelling granularity, so a power loss lands
    *between* operations.  After this is raised the device refuses all
    further operations until :meth:`repro.flash.chip.NandFlash.power_on` is
    called, which models the post-crash reboot that recovery code runs under.
    """


class DeviceOffError(FlashError):
    """An operation was attempted while the device is powered off."""


class RedundantInvalidateWarning(UserWarning):
    """An already-stale page was invalidated again.

    Double invalidation is harmless to the device model (the page stays
    INVALID) but means the FTL's mapping bookkeeping retired the same
    physical copy twice - usually a sign two code paths believe they own
    the supersession.  The chip counts and warns; the flashsan sanitizer
    (:mod:`repro.checks`) upgrades it to a structured violation.
    """


class BadBlockError(FlashError):
    """A block wore out (erase failure) or was already marked bad.

    Raised by the erase that exhausts a block's endurance; the block is
    permanently retired and refuses all further programs and erases.  The
    FTL is expected to catch this, drop the block from its accounting, and
    continue on the remaining capacity.
    """

    def __init__(self, pbn: int, erase_count: int):
        self.pbn = pbn
        self.erase_count = erase_count
        super().__init__(
            f"block {pbn} is bad (wore out after {erase_count} erases)"
        )
