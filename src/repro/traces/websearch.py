"""Websearch-like trace generator.

The UMass/SPC "Websearch" traces come from a search engine's index-serving
tier: ~99 % reads, moderately large requests (8-16 KiB), zipf-skewed over a
large footprint.  Reads exercise the *translation fetch* path - DFTL's CMT
misses versus LazyFTL's GMT page reads - with essentially no GC pressure,
the complementary regime to Financial1.
"""

from __future__ import annotations

import random
from array import array
from typing import Optional

from . import cache as trace_cache
from .columnar import ColumnarTrace
from .model import Trace


def websearch(
    n_requests: int,
    footprint_pages: int = 262144,
    seed: int = 0,
    write_ratio: float = 0.01,
    theta: float = 0.8,
    name: Optional[str] = None,
) -> Trace:
    """Read-dominant zipf workload with multi-page requests."""
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if footprint_pages <= 8:
        raise ValueError("footprint_pages too small")
    if not 0.0 < theta < 1.0:
        raise ValueError("theta must be in (0, 1)")

    def build() -> ColumnarTrace:
        rng = random.Random(seed)
        exponent = 1.0 / (1.0 - theta)
        scatter = 2654435761 % footprint_pages or 1
        if scatter % 2 == 0:
            scatter += 1
        ops = array("b")
        lpns = array("q")
        npages_col = array("q")
        for _ in range(n_requests):
            u = rng.random()
            rank = min(int(footprint_pages * (u ** exponent)),
                       footprint_pages - 1)
            lpn = (rank * scatter) % footprint_pages
            npages = rng.choice((4, 4, 8, 8, 8, 16))  # 8-32 KiB on 2 KiB pages
            npages = min(npages, footprint_pages - lpn)
            ops.append(1 if rng.random() < write_ratio else 0)
            lpns.append(lpn)
            npages_col.append(npages)
        return ColumnarTrace(ops, lpns, npages_col, validate=False)

    key = trace_cache.params_key(
        "synthetic:websearch", n=n_requests, footprint=footprint_pages,
        seed=seed, write_ratio=write_ratio, theta=theta,
    )
    cols = trace_cache.fetch(key, build)
    cols.name = name or "websearch"
    return Trace.from_columnar(cols)
