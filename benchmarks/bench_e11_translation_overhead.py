"""E11 - Table: translation (mapping-update) overhead and ablations.

Breaks LazyFTL's mapping traffic down and ablates the design choices
DESIGN.md calls out:

* **global batching** (commit all UMT entries of a GMT page together) -
  the mechanism that amortises conversion cost;
* the optional **GMT page cache** extension (off in the base design).
"""

from repro.sim import HEADLINE_DEVICE, default_lazy_config, run_scheme
from repro.sim.report import format_table
from repro.traces import financial1

from conftest import N_REQUESTS, emit

VARIANTS = (
    ("base (global batching)", {}),
    ("no global batching", {"global_batching": False}),
    ("with 64-page GMT cache", {"map_cache_pages": 64}),
    ("cheapest-convert policy", {"convert_policy": "cheapest"}),
)


def run_variants():
    footprint = int(HEADLINE_DEVICE.logical_pages * 0.8)
    trace = financial1(N_REQUESTS, footprint, seed=0)
    results = []
    for label, overrides in VARIANTS:
        config = default_lazy_config(uba_blocks=32, cba_blocks=4,
                                     **overrides)
        results.append((
            label,
            run_scheme("LazyFTL", trace, device=HEADLINE_DEVICE,
                       precondition="steady", config=config),
        ))
    return results


def test_e11_translation_overhead(benchmark):
    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    rows = []
    for label, r in results:
        s = r.ftl_stats
        rows.append([
            label,
            r.mean_response_us,
            s.map_reads,
            s.map_writes,
            s.batched_commits / max(1, s.map_writes),
            s.converts,
        ])
    text = format_table(
        ["variant", "mean_us", "map reads", "map writes",
         "commits/map write", "conversions"],
        rows,
        title=f"E11: LazyFTL translation overhead, financial1 "
              f"({N_REQUESTS} requests)",
    )
    emit("e11_translation_overhead", text)

    by_label = dict(results)
    base = by_label["base (global batching)"]
    unbatched = by_label["no global batching"]
    cached = by_label["with 64-page GMT cache"]
    # Global batching must reduce mapping writes substantially.
    assert base.ftl_stats.map_writes < unbatched.ftl_stats.map_writes * 0.8
    assert base.mean_response_us <= unbatched.mean_response_us
    # The cache extension removes repeat GMT reads.
    assert cached.ftl_stats.map_reads < base.ftl_stats.map_reads
