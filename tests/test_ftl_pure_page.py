"""Tests for the ideal page-mapping FTL."""

import random

import pytest

from repro.flash import FlashGeometry, NandFlash, UNIT_TIMING
from repro.ftl.pool import OutOfBlocksError
from repro.ftl.pure_page import PageFTL

from .ftl_conformance import FTLConformance


class TestPageFTLConformance(FTLConformance):
    def make_ftl(self, flash):
        return PageFTL(flash, logical_pages=self.LOGICAL_PAGES)


class TestPageFTLSpecifics:
    def make(self, blocks=16, pages=8, logical=64):
        flash = NandFlash(
            FlashGeometry(num_blocks=blocks, pages_per_block=pages),
            timing=UNIT_TIMING,
        )
        return PageFTL(flash, logical_pages=logical)

    def test_ram_is_four_bytes_per_logical_page(self):
        ftl = self.make(logical=64)
        assert ftl.ram_bytes() == 64 * 4

    def test_no_mapping_flash_traffic(self):
        """The ideal FTL never reads or writes mapping pages on flash."""
        ftl = self.make()
        rng = random.Random(0)
        for i in range(400):
            ftl.write(rng.randrange(64), i)
        assert ftl.stats.map_reads == 0
        assert ftl.stats.map_writes == 0

    def test_write_latency_is_one_program_without_gc(self):
        ftl = self.make()
        r = ftl.write(0, "x")
        assert r.latency_us == 1.0  # UNIT timing: one program

    def test_read_latency_is_one_read(self):
        ftl = self.make()
        ftl.write(0, "x")
        assert ftl.read(0).latency_us == 1.0

    def test_gc_copies_accounted(self):
        ftl = self.make()
        rng = random.Random(0)
        for i in range(1000):
            ftl.write(rng.randrange(64), i)
        assert ftl.stats.gc_runs > 0
        assert ftl.stats.gc_erases >= ftl.stats.gc_runs

    def test_never_merges(self):
        ftl = self.make()
        for i in range(500):
            ftl.write(i % 64, i)
        assert ftl.stats.merges_total == 0

    def test_device_too_small_rejected(self):
        flash = NandFlash(FlashGeometry(num_blocks=4, pages_per_block=8))
        with pytest.raises(ValueError):
            PageFTL(flash, logical_pages=32)

    def test_full_logical_space_rejected(self):
        # logical == physical leaves no GC slack
        flash = NandFlash(FlashGeometry(num_blocks=8, pages_per_block=8))
        with pytest.raises(ValueError):
            PageFTL(flash, logical_pages=64)

    def test_bad_threshold_rejected(self):
        flash = NandFlash(FlashGeometry(num_blocks=16, pages_per_block=8))
        with pytest.raises(ValueError):
            PageFTL(flash, logical_pages=64, gc_free_threshold=1)

    def test_old_copies_invalidated(self):
        ftl = self.make()
        ftl.write(5, "a")
        ftl.write(5, "b")
        valid_for_5 = [
            (b.index, o)
            for b in ftl.flash.blocks
            for o in b.valid_offsets()
            if b.pages[o].oob is not None and b.pages[o].oob.lpn == 5
        ]
        assert len(valid_for_5) == 1
